// sptx — command-line interface to the SparseTransX library, built on the
// sptx::Engine facade.
//
//   sptx train  --data triples.tsv --model TransE --epochs 200
//               --dim 128 --lr 0.0004 --save model.sptxc
//   sptx train  --profile FB15K --scale 0.01 --model TransR ...
//   sptx eval   --data triples.tsv --model TransE --load model.sptxc
//   sptx query  --profile FB15K --model TransE --load model.sptxc
//               --head 17 --relation 3 --top 10
//   sptx serve  --profile FB15K --model TransE [--load ckpt]
//               --threads 4 --queries 2000       (throughput smoke test)
//   sptx config [--json 1]                       (the SPTX_* registry)
//   sptx info   --data triples.tsv               (dataset statistics)
//   sptx profiles                                (the paper's Table 3)
//
// Data sources: --data <file.tsv|file.csv|file.sptx> loads a real dataset
// (format by extension); --profile <NAME> [--scale s] generates the
// synthetic equivalent of a Table 3 dataset.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/api/engine.hpp"
#include "src/common/cli_args.hpp"
#include "src/distributed/proc_ddp.hpp"
#include "src/kg/synthetic.hpp"
#include "src/profiling/timer.hpp"

namespace {

using namespace sptx;
using cli::Args;

kg::Dataset load_dataset(const Args& args) {
  if (args.has("profile")) {
    Rng rng(static_cast<std::uint64_t>(args.num("seed", 42)));
    const auto profile = kg::scaled(kg::profile_by_name(args.get("profile", "")),
                                    args.num("scale", 0.01));
    return kg::generate(profile, rng);
  }
  const std::string path = args.get("data", "");
  SPTX_CHECK(!path.empty(), "need --data <file> or --profile <NAME>");
  kg::Dataset ds;
  if (path.size() > 5 && path.substr(path.size() - 5) == ".sptx") {
    ds = kg::Dataset::load_binary(path);
  } else if (path.size() > 4 && path.substr(path.size() - 4) == ".csv") {
    ds = kg::load_csv(path, path);
  } else {
    ds = kg::load_tsv(path, path);
  }
  if (ds.test.empty()) {
    Rng rng(static_cast<std::uint64_t>(args.num("seed", 42)));
    ds = kg::split(std::move(ds), args.num("valid-frac", 0.05),
                   args.num("test-frac", 0.1), rng);
  }
  return ds;
}

ModelSpec build_spec(const Args& args) {
  ModelSpec spec;
  spec.family = args.get("model", "TransE");
  spec.framework = args.get("framework", "sparse");
  spec.config.dim = static_cast<index_t>(args.num("dim", 128));
  spec.config.rel_dim = static_cast<index_t>(args.num("rel-dim",
                                                      spec.config.dim));
  spec.config.margin = static_cast<float>(args.num("margin", 0.5));
  spec.config.dissimilarity = args.get("dissimilarity", "l2") == "l1"
                                  ? models::Dissimilarity::kL1
                                  : models::Dissimilarity::kL2;
  spec.config.loss = args.get("loss", "margin") == "logistic"
                         ? models::LossType::kLogistic
                         : models::LossType::kMarginRanking;
  spec.config.normalize_entities = args.num("normalize", 1) != 0;
  spec.seed = static_cast<std::uint64_t>(args.num("seed", 42)) + 1;
  return spec;
}

/// Engine options from the args. --ann / --nprobe / --ann-min-entities
/// become registry overrides so every session the engine opens resolves
/// them uniformly (and `sptx config` run under the same env shows
/// identical values).
Engine::Options engine_options(const Args& args) {
  Engine::Options eo;
  if (args.has("ann"))
    eo.config_overrides.emplace_back("SPTX_ANN", args.get("ann", "auto"));
  if (args.has("nprobe"))
    eo.config_overrides.emplace_back("SPTX_ANN_NPROBE",
                                     args.get("nprobe", "0"));
  if (args.has("ann-min-entities"))
    eo.config_overrides.emplace_back("SPTX_ANN_MIN_ENTITIES",
                                     args.get("ann-min-entities", "4096"));
  return eo;
}

/// Give `engine` the model the args describe, checkpoint-restored when
/// --load was given. (Two steps instead of returning an Engine by value:
/// the Engine owns a mutex and is intentionally immovable.)
void init_model(Engine& engine, const Args& args, const kg::Dataset& ds) {
  const ModelSpec spec = build_spec(args);
  if (args.has("load")) {
    engine.load_model(spec, ds.num_entities(), ds.num_relations(),
                      args.get("load", ""));
  } else {
    engine.create_model(spec, ds.num_entities(), ds.num_relations());
  }
}

void print_metrics(const eval::RankingMetrics& m) {
  std::printf("  queries %lld  Hits@1 %.4f  Hits@3 %.4f  Hits@10 %.4f  "
              "MRR %.4f  MR %.1f\n",
              static_cast<long long>(m.queries), m.hits_at_1, m.hits_at_3,
              m.hits_at_10, m.mrr, m.mean_rank);
}

/// `sptx train --ddp-workers N [--ddp-mode threads|procs] ...` — sharded
/// data-parallel training through Engine::train_ddp. In procs mode the
/// supervisor fork+execs this binary's hidden `ddp-worker` verb, so
/// worker_exec is our own executable.
int run_ddp_train(Engine& engine, const Args& args, const kg::Dataset& ds) {
  distributed::DdpConfig dc;
  dc.workers = static_cast<int>(args.num("ddp-workers", 4));
  dc.epochs = static_cast<int>(args.num("epochs", 10));
  dc.batch_size = static_cast<index_t>(args.num("batch", 4096));
  dc.shard_size = static_cast<index_t>(args.num("ddp-shard", 0));
  dc.lr = static_cast<float>(args.num("lr", 0.0004));
  dc.seed = static_cast<std::uint64_t>(args.num("seed", 42));
  dc.mode = args.get("ddp-mode", "threads");
  dc.policy = args.get("ddp-policy", "strict");
  dc.heartbeat_ms = static_cast<int>(args.num("ddp-heartbeat-ms", 1000));
  dc.max_worker_retries = static_cast<int>(args.num("ddp-retries", 1));
  dc.checkpoint_path = args.get("checkpoint", "");
  dc.checkpoint_every = static_cast<int>(
      args.num("checkpoint-every", dc.checkpoint_path.empty() ? 0 : 10));
  dc.checkpoint_keep = static_cast<int>(args.num("checkpoint-keep", 3));
  dc.resume_from = args.get("resume", "");
  dc.worker_exec = "/proc/self/exe";
  const int log_every = std::max(dc.epochs / 10, 1);
  dc.on_epoch = [&](int epoch, float loss) {
    if (epoch % log_every == 0)
      std::printf("  epoch %4d  loss %.6f\n", epoch, loss);
  };

  const auto result = engine.train_ddp(ds.train, dc);
  if (result.start_epoch > 0)
    std::printf("resumed from epoch %d (%s)\n", result.start_epoch,
                dc.resume_from.c_str());
  std::printf("ddp-trained %s in %.2fs: %d workers, shard %lld, "
              "%lld shards executed\n",
              engine.model().name().c_str(), result.total_seconds,
              result.workers, static_cast<long long>(result.shard_size),
              static_cast<long long>(result.shards_executed));
  if (result.workers_lost > 0 || result.workers_respawned > 0)
    std::printf("  fault tolerance: %d worker(s) lost, %d respawned, "
                "%lld shard(s) re-run on the supervisor\n",
                result.workers_lost, result.workers_respawned,
                static_cast<long long>(result.shards_reassigned));
  if (result.transport_frames > 0)
    std::printf("  transport: %lld frames, %.1f MB, %lld injected retries\n",
                static_cast<long long>(result.transport_frames),
                static_cast<double>(result.transport_bytes) /
                    (1024.0 * 1024.0),
                static_cast<long long>(result.transport_retries));
  if (result.checkpoints_written > 0)
    std::printf("wrote %d checkpoint(s), newest %s\n",
                result.checkpoints_written, result.last_checkpoint.c_str());

  if (args.has("save")) {
    engine.save(args.get("save", ""));
    std::printf("checkpoint written to %s\n", args.get("save", "").c_str());
  }
  if (!ds.test.empty() && args.num("eval", 1) != 0) {
    eval::EvalConfig ec;
    ec.max_queries =
        static_cast<std::int64_t>(args.num("max-queries", 200));
    std::printf("filtered link prediction on test split:\n");
    print_metrics(engine.evaluate(ds, ec));
  }
  return 0;
}

/// Hidden verb: what the DDP supervisor fork+execs. Not part of the user
/// surface (absent from usage()) — arguments come from proc_ddp.cpp's
/// spawn(), never a human.
int cmd_ddp_worker(const Args& args) {
  distributed::WorkerEndpoint endpoint;
  endpoint.socket_path = args.get("connect", "");
  endpoint.rank = static_cast<int>(args.num("rank", 0));
  endpoint.shm_fd = static_cast<int>(args.num("shm-fd", -1));
  endpoint.shm_bytes = static_cast<std::int64_t>(args.num("shm-bytes", 0));
  SPTX_CHECK(!endpoint.socket_path.empty(),
             "ddp-worker needs --connect <socket>");
  return distributed::ddp_worker_main(endpoint);
}

int cmd_train(const Args& args) {
  const kg::Dataset ds = load_dataset(args);
  std::printf("dataset %s: %lld entities, %lld relations, %lld/%lld/%lld "
              "train/valid/test\n",
              ds.name.c_str(), static_cast<long long>(ds.num_entities()),
              static_cast<long long>(ds.num_relations()),
              static_cast<long long>(ds.train.size()),
              static_cast<long long>(ds.valid.size()),
              static_cast<long long>(ds.test.size()));
  Engine engine(engine_options(args));
  init_model(engine, args, ds);
  if (args.has("ddp-workers") || args.has("ddp-mode"))
    return run_ddp_train(engine, args, ds);

  train::TrainConfig tc;
  tc.epochs = static_cast<int>(args.num("epochs", 200));
  tc.batch_size = static_cast<index_t>(args.num("batch", 32768));
  tc.lr = static_cast<float>(args.num("lr", 0.0004));
  tc.use_adagrad = args.get("optimizer", "sgd") == "adagrad";
  tc.negatives_per_positive = static_cast<int>(args.num("negatives", 1));
  tc.resample_negatives = args.num("resample-negatives", 0) != 0;
  tc.corruption = args.get("corruption", "uniform") == "bernoulli"
                      ? kg::CorruptionScheme::kBernoulli
                      : kg::CorruptionScheme::kUniform;
  tc.shuffle = args.num("shuffle", 0) != 0;
  tc.weight_decay = static_cast<float>(args.num("weight-decay", 0.0));
  tc.grad_clip_norm = static_cast<float>(args.num("clip-norm", 0.0));
  tc.patience = static_cast<int>(args.num("patience", 0));
  tc.seed = static_cast<std::uint64_t>(args.num("seed", 42));
  // Crash safety: --checkpoint <base> rotates atomic training checkpoints
  // every --checkpoint-every epochs; --resume continues a trajectory
  // bit-identically from a base path (newest rotation) or explicit file.
  tc.checkpoint_path = args.get("checkpoint", "");
  tc.checkpoint_every = static_cast<int>(
      args.num("checkpoint-every", tc.checkpoint_path.empty() ? 0 : 10));
  tc.checkpoint_keep = static_cast<int>(args.num("checkpoint-keep", 3));
  tc.resume_from = args.get("resume", "");
  const int log_every = std::max(tc.epochs / 10, 1);

  const auto result =
      engine.train(ds.train, tc, [&](int epoch, float loss) {
        if (epoch % log_every == 0)
          std::printf("  epoch %4d  loss %.6f\n", epoch, loss);
      });
  if (result.start_epoch > 0)
    std::printf("resumed from epoch %d (%s)\n", result.start_epoch,
                tc.resume_from.c_str());
  if (result.checkpoints_written > 0)
    std::printf("wrote %d checkpoint(s), newest %s\n",
                result.checkpoints_written, result.last_checkpoint.c_str());
  std::printf("trained %s in %.2fs (fwd %.2fs, bwd %.2fs, step %.2fs); "
              "peak %.1f MB, %.2f GFLOP\n",
              engine.model().name().c_str(), result.total_seconds,
              result.phases.forward_s, result.phases.backward_s,
              result.phases.step_s,
              static_cast<double>(result.peak_bytes) / (1024.0 * 1024.0),
              static_cast<double>(result.flops) / 1e9);

  if (args.has("save")) {
    engine.save(args.get("save", ""));
    std::printf("checkpoint written to %s\n", args.get("save", "").c_str());
  }
  if (!ds.test.empty() && args.num("eval", 1) != 0) {
    eval::EvalConfig ec;
    ec.max_queries =
        static_cast<std::int64_t>(args.num("max-queries", 200));
    std::printf("filtered link prediction on test split:\n");
    print_metrics(engine.evaluate(ds, ec));
  }
  return 0;
}

int cmd_eval(const Args& args) {
  const kg::Dataset ds = load_dataset(args);
  SPTX_CHECK(args.has("load"), "eval needs --load <checkpoint>");
  Engine engine(engine_options(args));
  init_model(engine, args, ds);
  eval::EvalConfig ec;
  ec.max_queries = static_cast<std::int64_t>(args.num("max-queries", 0));
  ec.filtered = args.num("filtered", 1) != 0;
  std::printf("%s on %s:\n", engine.model().name().c_str(), ds.name.c_str());
  print_metrics(engine.evaluate(ds, ec));
  if (args.num("by-category", 0) != 0) {
    const auto by_cat = eval::evaluate_by_category(engine.model(), ds, ec);
    for (int c = 0; c < 4; ++c) {
      std::printf("  [%s]", eval::to_string(
                                static_cast<eval::RelationCategory>(c)));
      print_metrics(by_cat.by_category[c]);
    }
  }
  return 0;
}

const char* type_name(ConfigType type) {
  switch (type) {
    case ConfigType::kFlag:
      return "flag";
    case ConfigType::kInt:
      return "int";
    case ConfigType::kDouble:
      return "double";
    case ConfigType::kEnum:
      return "enum";
    case ConfigType::kString:
      return "string";
  }
  return "?";
}

int cmd_config(const Args& args) {
  const RuntimeConfig rc = RuntimeConfig::from_env();
  if (args.num("json", 0) != 0) {
    std::printf("%s\n", rc.to_json().c_str());
    return 0;
  }
  std::printf("%-24s %-7s %-14s %-8s %s\n", "knob", "type", "value", "origin",
              "doc");
  for (const ConfigSpec& spec : RuntimeConfig::specs()) {
    const std::string name(spec.name);
    std::string value = rc.value_or(name, "");
    if (value.empty()) value = "(unset)";
    std::string doc(spec.doc);
    if (!spec.choices.empty())
      doc += " [" + std::string(spec.choices) + "]";
    std::printf("%-24s %-7s %-14s %-8s %s\n", name.c_str(),
                type_name(spec.type), value.c_str(),
                to_string(rc.origin(name)), doc.c_str());
  }
  return 0;
}

void print_predictions(const kg::Dataset& ds,
                       const std::vector<serve::Prediction>& predictions,
                       bool is_tail) {
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    const auto& p = predictions[i];
    const auto e = static_cast<std::size_t>(p.entity);
    const std::string name = e < ds.entity_names.size()
                                 ? ds.entity_names[e]
                                 : std::to_string(p.entity);
    std::printf("  %2zu. %s %-24s score %.4f\n", i + 1,
                is_tail ? "tail" : "head", name.c_str(), p.score);
  }
}

int cmd_query(const Args& args) {
  const kg::Dataset ds = load_dataset(args);
  SPTX_CHECK(args.has("load"), "query needs --load <checkpoint>");
  SPTX_CHECK(args.has("relation"), "query needs --relation <id>");
  Engine engine(engine_options(args));
  init_model(engine, args, ds);

  serve::SessionOptions so;
  if (args.num("filtered", 1) != 0) so.filter = &ds.train;
  auto session = engine.open_session(so);
  const auto relation = static_cast<std::int64_t>(args.num("relation", 0));
  const int k = static_cast<int>(args.num("top", 10));

  if (args.has("head") && args.has("tail")) {
    // Full triple: score it and rank the tail among all entities.
    const Triplet t{static_cast<std::int64_t>(args.num("head", 0)), relation,
                    static_cast<std::int64_t>(args.num("tail", 0))};
    std::printf("score(%lld, %lld, %lld) = %.4f   filtered tail-rank %.1f\n",
                static_cast<long long>(t.head),
                static_cast<long long>(t.relation),
                static_cast<long long>(t.tail), session->score_one(t),
                session->rank(t, /*corrupt_tail=*/true));
  } else if (args.has("head")) {
    const auto head = static_cast<std::int64_t>(args.num("head", 0));
    std::printf("top-%d tails for (%lld, %lld, ?):\n", k,
                static_cast<long long>(head),
                static_cast<long long>(relation));
    print_predictions(ds, session->top_tails(head, relation, k), true);
  } else if (args.has("tail")) {
    const auto tail = static_cast<std::int64_t>(args.num("tail", 0));
    std::printf("top-%d heads for (?, %lld, %lld):\n", k,
                static_cast<long long>(relation),
                static_cast<long long>(tail));
    print_predictions(ds, session->top_heads(relation, tail, k), false);
  } else {
    throw Error("query needs --head and/or --tail");
  }
  return 0;
}

/// Multi-threaded serving throughput smoke test: T threads drive one
/// shared session with a mixed query load (small batch scores + periodic
/// top-k), then the counters and QPS are reported. Exercises exactly the
/// concurrent path CI's ASan job needs to see under instrumentation.
int cmd_serve(const Args& args) {
  const kg::Dataset ds = load_dataset(args);
  Engine engine(engine_options(args));
  init_model(engine, args, ds);
  if (!args.has("load")) {
    // No checkpoint: warm the model with a short training run so the
    // served scores are not pure noise.
    train::TrainConfig tc;
    tc.epochs = static_cast<int>(args.num("epochs", 2));
    tc.batch_size = static_cast<index_t>(args.num("batch", 4096));
    tc.seed = static_cast<std::uint64_t>(args.num("seed", 42));
    engine.train(ds.train, tc);
  }

  serve::SessionOptions so;
  so.micro_batch = args.num("microbatch", 1) != 0;
  so.window_us = static_cast<int>(args.num("window-us", 0));
  so.queue_limit = static_cast<index_t>(args.num("queue-limit", 0));
  so.deadline_us = static_cast<std::int64_t>(args.num("deadline-us", 0));
  so.max_concurrency = static_cast<int>(args.num("concurrency", 0));
  auto session = engine.open_session(so);

  const int threads = static_cast<int>(args.num("threads", 4));
  const auto queries = static_cast<std::int64_t>(args.num("queries", 2000));
  const auto batch = static_cast<std::size_t>(args.num("query-batch", 8));
  const int top_k = static_cast<int>(args.num("top", 10));
  const int publishes = static_cast<int>(args.num("publishes", 0));
  SPTX_CHECK(threads >= 1 && queries >= 1, "bad serve load shape");

  std::atomic<std::int64_t> scored{0};
  std::atomic<std::int64_t> shed_queue{0}, shed_deadline{0};
  std::atomic<bool> done{false};
  const auto t0 = profiling::clock::now();

  // --publishes N: hot-swap N fresh snapshots into the live session while
  // the query threads hammer it — the zero-downtime publication drill.
  std::thread publisher;
  if (publishes > 0) {
    publisher = std::thread([&] {
      for (int p = 0; p < publishes && !done.load(); ++p) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        engine.publish();
      }
    });
  }

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int w = 0; w < threads; ++w) {
    pool.emplace_back([&, w] {
      Rng rng(static_cast<std::uint64_t>(1000 + w));
      std::vector<Triplet> q(batch);
      for (std::int64_t i = 0; i < queries; ++i) {
        if (i % 64 == 63) {
          // Every 64th query is a top-k prediction (the heavy path).
          const auto h = static_cast<std::int64_t>(
              rng.next_below(static_cast<std::uint64_t>(ds.num_entities())));
          const auto r = static_cast<std::int64_t>(
              rng.next_below(static_cast<std::uint64_t>(ds.num_relations())));
          session->top_tails(h, r, top_k);
          scored.fetch_add(1, std::memory_order_relaxed);
        } else {
          for (auto& t : q) {
            t.head = static_cast<std::int64_t>(rng.next_below(
                static_cast<std::uint64_t>(ds.num_entities())));
            t.relation = static_cast<std::int64_t>(rng.next_below(
                static_cast<std::uint64_t>(ds.num_relations())));
            t.tail = static_cast<std::int64_t>(rng.next_below(
                static_cast<std::uint64_t>(ds.num_entities())));
          }
          // Deadline-aware path: overload (or injected serve_queue faults)
          // sheds with a typed rejection instead of throwing mid-thread.
          switch (session->try_score(q).rejected) {
            case serve::RejectReason::kNone:
              scored.fetch_add(1, std::memory_order_relaxed);
              break;
            case serve::RejectReason::kQueueFull:
              shed_queue.fetch_add(1, std::memory_order_relaxed);
              break;
            case serve::RejectReason::kDeadline:
              shed_deadline.fetch_add(1, std::memory_order_relaxed);
              break;
          }
        }
      }
    });
  }
  for (auto& t : pool) t.join();
  done.store(true);
  if (publisher.joinable()) publisher.join();
  const double seconds = profiling::seconds_since(t0);

  const auto stats = session->stats();
  std::printf("served %lld queries on %d threads in %.3fs — %.0f queries/s\n",
              static_cast<long long>(scored.load()), threads, seconds,
              static_cast<double>(scored.load()) / seconds);
  if (shed_queue.load() > 0 || shed_deadline.load() > 0)
    std::printf("  degraded: %lld shed queue-full, %lld shed past-deadline\n",
                static_cast<long long>(shed_queue.load()),
                static_cast<long long>(shed_deadline.load()));
  std::printf("  micro-batch: %s — %lld requests in %lld executions "
              "(%lld coalesced), %lld triplets\n",
              so.micro_batch ? "on" : "off",
              static_cast<long long>(stats.batcher.requests),
              static_cast<long long>(stats.batcher.batches_executed),
              static_cast<long long>(stats.batcher.coalesced_requests),
              static_cast<long long>(stats.batcher.triplets));
  std::printf("  candidate plans: %lld hits, %lld misses, %lld resident\n",
              static_cast<long long>(stats.plans.hits),
              static_cast<long long>(stats.plans.misses),
              static_cast<long long>(stats.plans.entries));
  std::printf("  top-k: %lld via ANN (%lld candidates re-ranked), "
              "%lld brute-force\n",
              static_cast<long long>(stats.topk_ann),
              static_cast<long long>(stats.ann_candidates),
              static_cast<long long>(stats.topk_brute));
  if (publishes > 0)
    std::printf("  hot-swap: %lld installs, serving snapshot version %llu\n",
                static_cast<long long>(stats.installs),
                static_cast<unsigned long long>(stats.snapshot_version));
  return 0;
}

/// Operational health as JSON. Bare `sptx health` reports the process
/// surface (config + fault harness, no model); with a data source and
/// --load it also reports the loaded model, and --selftest N drives N
/// scoring queries through a session so the serving counters are live.
int cmd_health(const Args& args) {
  Engine engine;
  if (args.has("data") || args.has("profile")) {
    const kg::Dataset ds = load_dataset(args);
    const ModelSpec spec = build_spec(args);
    if (args.has("load")) {
      engine.load_model(spec, ds.num_entities(), ds.num_relations(),
                        args.get("load", ""));
    } else {
      engine.create_model(spec, ds.num_entities(), ds.num_relations());
    }
    const auto selftest = static_cast<std::int64_t>(args.num("selftest", 0));
    if (selftest > 0) {
      auto session = engine.open_session({});
      Rng rng(7);
      for (std::int64_t i = 0; i < selftest; ++i) {
        const Triplet t{
            static_cast<std::int64_t>(rng.next_below(
                static_cast<std::uint64_t>(ds.num_entities()))),
            static_cast<std::int64_t>(rng.next_below(
                static_cast<std::uint64_t>(ds.num_relations()))),
            static_cast<std::int64_t>(rng.next_below(
                static_cast<std::uint64_t>(ds.num_entities())))};
        session->try_score(std::span<const Triplet>(&t, 1),
                           args.num("deadline-us", 0));
      }
      std::printf("%s\n", engine.health_json().c_str());
      return 0;
    }
  }
  std::printf("%s\n", engine.health_json().c_str());
  return 0;
}

int cmd_info(const Args& args) {
  const kg::Dataset ds = load_dataset(args);
  std::printf("%s\n", ds.name.c_str());
  std::printf("  entities  %lld\n", static_cast<long long>(ds.num_entities()));
  std::printf("  relations %lld\n",
              static_cast<long long>(ds.num_relations()));
  std::printf("  train     %lld\n", static_cast<long long>(ds.train.size()));
  std::printf("  valid     %lld\n", static_cast<long long>(ds.valid.size()));
  std::printf("  test      %lld\n", static_cast<long long>(ds.test.size()));
  const auto cats = eval::classify_relations(ds.train);
  int counts[4] = {0, 0, 0, 0};
  for (auto c : cats) counts[static_cast<int>(c)]++;
  std::printf("  relation categories: 1-1 %d, 1-N %d, N-1 %d, N-N %d\n",
              counts[0], counts[1], counts[2], counts[3]);
  return 0;
}

int cmd_profiles() {
  std::printf("%-10s %-10s %-10s %-12s\n", "dataset", "entities",
              "relations", "triplets");
  for (const auto& p : kg::paper_profiles()) {
    std::printf("%-10s %-10lld %-10lld %-12lld\n", p.name.c_str(),
                static_cast<long long>(p.entities),
                static_cast<long long>(p.relations),
                static_cast<long long>(p.triplets));
  }
  return 0;
}

void usage() {
  std::printf(
      "usage: sptx <train|eval|query|serve|health|config|info|profiles> "
      "[--option value ...]\n"
      "  data:   --data file.{tsv,csv,sptx} | --profile NAME --scale S\n"
      "  model:  --model TransE|TransR|TransH|TorusE|TransD|TransA|TransC|\n"
      "          TransM|DistMult|ComplEx|RotatE  --framework sparse|dense\n"
      "          --dim D --rel-dim D --margin M --dissimilarity l1|l2\n"
      "          --loss margin|logistic --normalize 0|1\n"
      "  train:  --epochs E --batch B --lr LR --optimizer sgd|adagrad\n"
      "          --negatives K --resample-negatives 0|1\n"
      "          --corruption uniform|bernoulli --save ckpt --load ckpt\n"
      "          --shuffle 0|1 --weight-decay L --clip-norm C --patience P\n"
      "          --checkpoint base --checkpoint-every N --checkpoint-keep K\n"
      "          --resume base|file.epN   (crash-safe rotated checkpoints)\n"
      "  ddp:    --ddp-workers N --ddp-mode threads|procs\n"
      "          --ddp-policy strict|degrade --ddp-heartbeat-ms MS\n"
      "          --ddp-retries R --ddp-shard S  (elastic multi-process DDP)\n"
      "  eval:   --load ckpt --max-queries Q --filtered 0|1 --by-category 1\n"
      "  query:  --load ckpt --relation R [--head H] [--tail T] --top K\n"
      "  serve:  [--load ckpt] --threads T --queries N --microbatch 0|1\n"
      "          --window-us U --query-batch B --queue-limit Q\n"
      "          --deadline-us D --concurrency C  (graceful degradation)\n"
      "          --publishes N  (hot-swap N snapshots mid-run)\n"
      "  ann:    --ann auto|on|off --nprobe P --ann-min-entities N\n"
      "          (clustered top-k for query/serve; scores stay exact)\n"
      "  health: [--data|--profile ... --load ckpt --selftest N]\n"
      "          print the engine health surface as JSON\n"
      "  config: [--json 1]   print the SPTX_* runtime-config registry\n");
}

// "ddp-worker" is the hidden verb the DDP supervisor fork+execs — valid to
// dispatch, deliberately absent from usage().
constexpr std::string_view kCommands[] = {"train",  "eval",     "query",
                                          "serve",  "health",   "config",
                                          "info",   "profiles", "help",
                                          "ddp-worker"};

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = cli::parse_args(argc, argv);
    if (args.command.empty()) {
      usage();
      return 1;
    }
    if (!cli::known_command(args.command, kCommands)) {
      std::fprintf(stderr, "error: unknown command '%s'\n",
                   args.command.c_str());
      usage();
      return 1;
    }
    if (args.command == "ddp-worker") return cmd_ddp_worker(args);
    if (args.command == "train") return cmd_train(args);
    if (args.command == "eval") return cmd_eval(args);
    if (args.command == "query") return cmd_query(args);
    if (args.command == "serve") return cmd_serve(args);
    if (args.command == "health") return cmd_health(args);
    if (args.command == "config") return cmd_config(args);
    if (args.command == "info") return cmd_info(args);
    if (args.command == "profiles") return cmd_profiles();
    usage();
    return 0;  // help
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
