// sptx — command-line interface to the SparseTransX library.
//
//   sptx train --data triples.tsv --model TransE --epochs 200
//              --dim 128 --lr 0.0004 --save model.sptxc
//   sptx train --profile FB15K --scale 0.01 --model TransR ...
//   sptx eval  --data triples.tsv --model TransE --load model.sptxc
//   sptx info  --data triples.tsv          (dataset statistics)
//   sptx profiles                          (the paper's Table 3)
//
// Data sources: --data <file.tsv|file.csv|file.sptx> loads a real dataset
// (format by extension); --profile <NAME> [--scale s] generates the
// synthetic equivalent of a Table 3 dataset.
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <string>

#include "src/eval/link_prediction.hpp"
#include "src/kg/synthetic.hpp"
#include "src/models/checkpoint.hpp"
#include "src/models/model.hpp"
#include "src/train/trainer.hpp"

namespace {

using namespace sptx;

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  bool has(const std::string& key) const { return options.count(key) > 0; }
  std::string get(const std::string& key, const std::string& fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  double num(const std::string& key, double fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : std::atof(it->second.c_str());
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i + 1 < argc; i += 2) {
    const char* key = argv[i];
    SPTX_CHECK(std::strncmp(key, "--", 2) == 0, "expected --option, got "
                                                    << key);
    args.options[key + 2] = argv[i + 1];
  }
  return args;
}

kg::Dataset load_dataset(const Args& args) {
  if (args.has("profile")) {
    Rng rng(static_cast<std::uint64_t>(args.num("seed", 42)));
    const auto profile = kg::scaled(kg::profile_by_name(args.get("profile", "")),
                                    args.num("scale", 0.01));
    return kg::generate(profile, rng);
  }
  const std::string path = args.get("data", "");
  SPTX_CHECK(!path.empty(), "need --data <file> or --profile <NAME>");
  kg::Dataset ds;
  if (path.size() > 5 && path.substr(path.size() - 5) == ".sptx") {
    ds = kg::Dataset::load_binary(path);
  } else if (path.size() > 4 && path.substr(path.size() - 4) == ".csv") {
    ds = kg::load_csv(path, path);
  } else {
    ds = kg::load_tsv(path, path);
  }
  if (ds.test.empty()) {
    Rng rng(static_cast<std::uint64_t>(args.num("seed", 42)));
    ds = kg::split(std::move(ds), args.num("valid-frac", 0.05),
                   args.num("test-frac", 0.1), rng);
  }
  return ds;
}

std::unique_ptr<models::KgeModel> build_model(const Args& args,
                                              const kg::Dataset& ds) {
  models::ModelConfig cfg;
  cfg.dim = static_cast<index_t>(args.num("dim", 128));
  cfg.rel_dim = static_cast<index_t>(args.num("rel-dim", cfg.dim));
  cfg.margin = static_cast<float>(args.num("margin", 0.5));
  cfg.dissimilarity = args.get("dissimilarity", "l2") == "l1"
                          ? models::Dissimilarity::kL1
                          : models::Dissimilarity::kL2;
  cfg.loss = args.get("loss", "margin") == "logistic"
                 ? models::LossType::kLogistic
                 : models::LossType::kMarginRanking;
  cfg.normalize_entities = args.num("normalize", 1) != 0;
  Rng rng(static_cast<std::uint64_t>(args.num("seed", 42)) + 1);
  const std::string model_name = args.get("model", "TransE");
  const std::string framework = args.get("framework", "sparse");
  return framework == "dense"
             ? models::make_dense_model(model_name, ds.num_entities(),
                                        ds.num_relations(), cfg, rng)
             : models::make_sparse_model(model_name, ds.num_entities(),
                                         ds.num_relations(), cfg, rng);
}

void print_metrics(const eval::RankingMetrics& m) {
  std::printf("  queries %lld  Hits@1 %.4f  Hits@3 %.4f  Hits@10 %.4f  "
              "MRR %.4f  MR %.1f\n",
              static_cast<long long>(m.queries), m.hits_at_1, m.hits_at_3,
              m.hits_at_10, m.mrr, m.mean_rank);
}

int cmd_train(const Args& args) {
  const kg::Dataset ds = load_dataset(args);
  std::printf("dataset %s: %lld entities, %lld relations, %lld/%lld/%lld "
              "train/valid/test\n",
              ds.name.c_str(), static_cast<long long>(ds.num_entities()),
              static_cast<long long>(ds.num_relations()),
              static_cast<long long>(ds.train.size()),
              static_cast<long long>(ds.valid.size()),
              static_cast<long long>(ds.test.size()));
  auto model = build_model(args, ds);
  if (args.has("load")) models::load_checkpoint(*model, args.get("load", ""));

  train::TrainConfig tc;
  tc.epochs = static_cast<int>(args.num("epochs", 200));
  tc.batch_size = static_cast<index_t>(args.num("batch", 32768));
  tc.lr = static_cast<float>(args.num("lr", 0.0004));
  tc.use_adagrad = args.get("optimizer", "sgd") == "adagrad";
  tc.negatives_per_positive = static_cast<int>(args.num("negatives", 1));
  tc.resample_negatives = args.num("resample-negatives", 0) != 0;
  tc.corruption = args.get("corruption", "uniform") == "bernoulli"
                      ? kg::CorruptionScheme::kBernoulli
                      : kg::CorruptionScheme::kUniform;
  tc.shuffle = args.num("shuffle", 0) != 0;
  tc.weight_decay = static_cast<float>(args.num("weight-decay", 0.0));
  tc.grad_clip_norm = static_cast<float>(args.num("clip-norm", 0.0));
  tc.patience = static_cast<int>(args.num("patience", 0));
  tc.seed = static_cast<std::uint64_t>(args.num("seed", 42));
  const int log_every = std::max(tc.epochs / 10, 1);

  const auto result = train::train(
      *model, ds.train, tc, [&](int epoch, float loss) {
        if (epoch % log_every == 0)
          std::printf("  epoch %4d  loss %.6f\n", epoch, loss);
      });
  std::printf("trained %s in %.2fs (fwd %.2fs, bwd %.2fs, step %.2fs); "
              "peak %.1f MB, %.2f GFLOP\n",
              model->name().c_str(), result.total_seconds,
              result.phases.forward_s, result.phases.backward_s,
              result.phases.step_s,
              static_cast<double>(result.peak_bytes) / (1024.0 * 1024.0),
              static_cast<double>(result.flops) / 1e9);

  if (args.has("save")) {
    models::save_checkpoint(*model, args.get("save", ""));
    std::printf("checkpoint written to %s\n", args.get("save", "").c_str());
  }
  if (!ds.test.empty() && args.num("eval", 1) != 0) {
    eval::EvalConfig ec;
    ec.max_queries =
        static_cast<std::int64_t>(args.num("max-queries", 200));
    std::printf("filtered link prediction on test split:\n");
    print_metrics(eval::evaluate(*model, ds, ec));
  }
  return 0;
}

int cmd_eval(const Args& args) {
  const kg::Dataset ds = load_dataset(args);
  auto model = build_model(args, ds);
  SPTX_CHECK(args.has("load"), "eval needs --load <checkpoint>");
  models::load_checkpoint(*model, args.get("load", ""));
  eval::EvalConfig ec;
  ec.max_queries = static_cast<std::int64_t>(args.num("max-queries", 0));
  ec.filtered = args.num("filtered", 1) != 0;
  std::printf("%s on %s:\n", model->name().c_str(), ds.name.c_str());
  print_metrics(eval::evaluate(*model, ds, ec));
  if (args.num("by-category", 0) != 0) {
    const auto by_cat = eval::evaluate_by_category(*model, ds, ec);
    for (int c = 0; c < 4; ++c) {
      std::printf("  [%s]", eval::to_string(
                                static_cast<eval::RelationCategory>(c)));
      print_metrics(by_cat.by_category[c]);
    }
  }
  return 0;
}

int cmd_info(const Args& args) {
  const kg::Dataset ds = load_dataset(args);
  std::printf("%s\n", ds.name.c_str());
  std::printf("  entities  %lld\n", static_cast<long long>(ds.num_entities()));
  std::printf("  relations %lld\n",
              static_cast<long long>(ds.num_relations()));
  std::printf("  train     %lld\n", static_cast<long long>(ds.train.size()));
  std::printf("  valid     %lld\n", static_cast<long long>(ds.valid.size()));
  std::printf("  test      %lld\n", static_cast<long long>(ds.test.size()));
  const auto cats = eval::classify_relations(ds.train);
  int counts[4] = {0, 0, 0, 0};
  for (auto c : cats) counts[static_cast<int>(c)]++;
  std::printf("  relation categories: 1-1 %d, 1-N %d, N-1 %d, N-N %d\n",
              counts[0], counts[1], counts[2], counts[3]);
  return 0;
}

int cmd_profiles() {
  std::printf("%-10s %-10s %-10s %-12s\n", "dataset", "entities",
              "relations", "triplets");
  for (const auto& p : kg::paper_profiles()) {
    std::printf("%-10s %-10lld %-10lld %-12lld\n", p.name.c_str(),
                static_cast<long long>(p.entities),
                static_cast<long long>(p.relations),
                static_cast<long long>(p.triplets));
  }
  return 0;
}

void usage() {
  std::printf(
      "usage: sptx <train|eval|info|profiles> [--option value ...]\n"
      "  data:   --data file.{tsv,csv,sptx} | --profile NAME --scale S\n"
      "  model:  --model TransE|TransR|TransH|TorusE|TransD|TransA|TransC|\n"
      "          TransM|DistMult|ComplEx|RotatE  --framework sparse|dense\n"
      "          --dim D --rel-dim D --margin M --dissimilarity l1|l2\n"
      "          --loss margin|logistic --normalize 0|1\n"
      "  train:  --epochs E --batch B --lr LR --optimizer sgd|adagrad\n"
      "          --negatives K --resample-negatives 0|1\n"
      "          --corruption uniform|bernoulli --save ckpt --load ckpt\n"
      "          --shuffle 0|1 --weight-decay L --clip-norm C --patience P\n"
      "  eval:   --load ckpt --max-queries Q --filtered 0|1 --by-category 1\n");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse_args(argc, argv);
    if (args.command == "train") return cmd_train(args);
    if (args.command == "eval") return cmd_eval(args);
    if (args.command == "info") return cmd_info(args);
    if (args.command == "profiles") return cmd_profiles();
    usage();
    return args.command.empty() ? 1 : (args.command == "help" ? 0 : 1);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
