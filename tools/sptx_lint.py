#!/usr/bin/env python3
"""sptx_lint — repo-invariant checker for the SparseTransX tree.

Eight rules, each guarding a discipline the codebase relies on but no
compiler enforces:

  env-getenv      std::getenv("SPTX_...") appears only in
                  src/common/runtime_config.cpp — every other consumer goes
                  through the RuntimeConfig registry, so one snapshot
                  governs a whole run.
  env-registry    every "SPTX_*" string literal in src/ names a knob
                  registered in the runtime_config.cpp table, and every
                  registered knob is documented in README.md's env table —
                  no phantom knobs, no undocumented knobs.
  counter-names   every profiling::Counter enumerator has an index-aligned
                  entry in kCounterNames (the health surface and benches
                  print counters by these names).
  checkpoint-io   checkpoint-writing subsystems never open raw ofstream /
                  fopen handles — all checkpoint writes flow through
                  AtomicFileWriter so a crash can never leave a truncated
                  file.
  rng-discipline  no rand()/srand()/std::random_device in src/ — every
                  random stream is a seeded sptx::Rng, so any run is
                  replayable from its logged seeds.
  raw-threads     std::thread appears only inside src/runtime/ (the
                  TaskPool's workers plus the legacy-mode runtime::Thread
                  wrapper) and src/distributed/ddp.cpp's documented
                  fork/join site — every other site schedules through
                  runtime::TaskPool so the process keeps one view of
                  available parallelism.
  process-control fork/exec/kill/waitpid appear only inside
                  src/distributed/ — child-process lifecycle is the DDP
                  supervisor's exclusive job, so no other subsystem can
                  leak a pid, steal a SIGCHLD, or fork a threaded process.
  include-layers  src/ subdirectories form layers; an #include may point
                  sideways or down, never up (common -> kg -> profiling ->
                  tensor/runtime -> sparse -> autograd/kernels -> nn ->
                  baseline/models -> train/eval/distributed/serve -> api).

Exit status 0 when the tree is clean; 1 with one "file:line: rule: message"
diagnostic per violation otherwise. Registered as the `sptx_lint` ctest and
run by CI's static-analysis job; tests/test_lint.py self-tests every rule
against fixture trees.
"""

import argparse
import os
import re
import sys

# Directory layers for the include rule. Equal rank = same layer (intra-
# layer includes are fine: models <-> baseline share an interface header,
# distributed builds on train). An include from a lower-ranked directory
# into a higher-ranked one is a violation.
LAYERS = {
    "common": 0,
    "kg": 1,
    "profiling": 2,
    "tensor": 3,
    "runtime": 3,
    "sparse": 4,
    "autograd": 5,
    "kernels": 5,
    "nn": 6,
    "baseline": 7,
    "models": 7,
    "train": 8,
    "eval": 8,
    "distributed": 8,
    "serve": 8,
    "api": 9,
}

# Subsystems that write checkpoints: raw file-handle opens are banned here
# (AtomicFileWriter's own implementation lives in src/common/atomic_file.*,
# outside these prefixes).
CHECKPOINT_PREFIXES = (
    os.path.join("src", "models", "checkpoint"),
    os.path.join("src", "train") + os.sep,
    os.path.join("src", "distributed") + os.sep,
)

SOURCE_EXTS = (".cpp", ".hpp", ".h", ".cc")


def strip_comments(text):
    """Remove // and /* */ comments, preserving line structure and string
    literals (a // inside a string stays)."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                i += 2
                continue
            if c == '"':
                state = "string"
            elif c == "'":
                state = "char"
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
                continue
            if c == "\n":
                out.append(c)
        elif state == "string":
            if c == "\\":
                out.append(c)
                if nxt:
                    out.append(nxt)
                    i += 2
                    continue
            elif c == '"':
                state = "code"
            out.append(c)
        elif state == "char":
            if c == "\\":
                out.append(c)
                if nxt:
                    out.append(nxt)
                    i += 2
                    continue
            elif c == "'":
                state = "code"
            out.append(c)
        i += 1
    return "".join(out)


def iter_source_files(root, subdir="src"):
    base = os.path.join(root, subdir)
    for dirpath, _, filenames in os.walk(base):
        for name in sorted(filenames):
            if name.endswith(SOURCE_EXTS):
                yield os.path.join(dirpath, name)


def read(path):
    with open(path, encoding="utf-8") as f:
        return f.read()


class Linter:
    def __init__(self, root):
        self.root = root
        self.violations = []

    def report(self, path, line, rule, message):
        rel = os.path.relpath(path, self.root)
        self.violations.append(f"{rel}:{line}: {rule}: {message}")

    # -- rule: env-getenv ---------------------------------------------------

    def check_getenv(self):
        allowed = os.path.join(self.root, "src", "common", "runtime_config.cpp")
        pattern = re.compile(r'getenv\s*\(\s*"SPTX_')
        for path in iter_source_files(self.root):
            if os.path.abspath(path) == os.path.abspath(allowed):
                continue
            for lineno, line in enumerate(
                    strip_comments(read(path)).splitlines(), 1):
                if pattern.search(line):
                    self.report(
                        path, lineno, "env-getenv",
                        "getenv(\"SPTX_...\") outside runtime_config.cpp — "
                        "read the knob through the RuntimeConfig registry")

    # -- rule: env-registry -------------------------------------------------

    def registry_knobs(self):
        """Knob names from the declarative table in runtime_config.cpp."""
        path = os.path.join(self.root, "src", "common", "runtime_config.cpp")
        if not os.path.exists(path):
            return set(), path
        knobs = set(re.findall(r'\{\s*"(SPTX_[A-Z0-9_]+)"', read(path)))
        return knobs, path

    def check_registry(self):
        knobs, registry_path = self.registry_knobs()
        literal = re.compile(r'"(SPTX_[A-Z0-9_]+)"')
        for path in iter_source_files(self.root):
            for lineno, line in enumerate(
                    strip_comments(read(path)).splitlines(), 1):
                for name in literal.findall(line):
                    if name not in knobs:
                        self.report(
                            path, lineno, "env-registry",
                            f"'{name}' is not a registered knob — add it to "
                            "the runtime_config.cpp table (or fix the typo)")
        readme = os.path.join(self.root, "README.md")
        readme_text = read(readme) if os.path.exists(readme) else ""
        for name in sorted(knobs):
            if name not in readme_text:
                self.report(
                    registry_path, 1, "env-registry",
                    f"registered knob '{name}' is missing from README.md's "
                    "environment table")

    # -- rule: counter-names ------------------------------------------------

    def check_counter_names(self):
        path = os.path.join(self.root, "src", "profiling", "counters.hpp")
        if not os.path.exists(path):
            return
        text = read(path)
        enum_match = re.search(r"enum class Counter[^{]*\{(.*?)\};", text,
                               re.DOTALL)
        names_match = re.search(
            r"kCounterNames\[\]\s*=\s*\{(.*?)\};", text, re.DOTALL)
        if not enum_match:
            self.report(path, 1, "counter-names", "Counter enum not found")
            return
        if not names_match:
            self.report(path, 1, "counter-names",
                        "kCounterNames table not found")
            return
        members = [m for m in re.findall(r"\b(k[A-Z]\w*)\s*[,=]",
                                         strip_comments(enum_match.group(1)))
                   if m != "kNumCounters"]
        entries = re.findall(r'"([^"]+)"', names_match.group(1))
        if len(entries) != len(members):
            self.report(
                path, 1, "counter-names",
                f"kCounterNames has {len(entries)} entries for "
                f"{len(members)} Counter enumerators — the lists must stay "
                "index-aligned")
        # Each name-table entry carries a `// kEnumerator` comment tying it
        # to its enum position; verify the tie-backs exist and line up.
        comments = re.findall(r'"\s*,?\s*//\s*(k\w+)', names_match.group(1))
        for i, member in enumerate(members):
            if i < len(comments) and comments[i] != member:
                self.report(
                    path, 1, "counter-names",
                    f"kCounterNames entry {i} is annotated '{comments[i]}' "
                    f"but the enum's member {i} is '{member}'")
            elif i >= len(comments):
                self.report(
                    path, 1, "counter-names",
                    f"kCounterNames entry {i} lacks its `// {member}` "
                    "tie-back comment")

    # -- rule: checkpoint-io ------------------------------------------------

    def check_checkpoint_io(self):
        pattern = re.compile(r"\bstd::ofstream\b|\bofstream\s+\w+\s*\(|"
                             r"\bfopen\s*\(")
        for path in iter_source_files(self.root):
            rel = os.path.relpath(path, self.root)
            if not rel.startswith(CHECKPOINT_PREFIXES):
                continue
            for lineno, line in enumerate(
                    strip_comments(read(path)).splitlines(), 1):
                if pattern.search(line):
                    self.report(
                        path, lineno, "checkpoint-io",
                        "raw file write in a checkpoint subsystem — go "
                        "through AtomicFileWriter so a crash cannot leave "
                        "a truncated checkpoint")

    # -- rule: rng-discipline -----------------------------------------------

    def check_rng(self):
        pattern = re.compile(
            r"\bstd::random_device\b|(?<![\w:])s?rand\s*\(")
        for path in iter_source_files(self.root):
            for lineno, line in enumerate(
                    strip_comments(read(path)).splitlines(), 1):
                if pattern.search(line):
                    self.report(
                        path, lineno, "rng-discipline",
                        "unseeded/global RNG in src/ — use a seeded "
                        "sptx::Rng so the run replays from logged seeds")

    # -- rule: raw-threads ----------------------------------------------------

    def check_raw_threads(self):
        """std::thread construction is a runtime-internal privilege.

        Allowed: src/runtime/ (the pool's workers and the legacy-mode
        runtime::Thread wrapper) and src/distributed/ddp.cpp, whose
        fork/join worker handshake documents its synchronization contract
        in place and stays as the SPTX_RUNTIME=legacy escape hatch.
        std::this_thread (sleep/yield) is fine anywhere.
        """
        allowed_dir = os.path.join("src", "runtime") + os.sep
        allowed_files = {os.path.join("src", "distributed", "ddp.cpp")}
        pattern = re.compile(r"\bstd\s*::\s*thread\b")
        for path in iter_source_files(self.root):
            rel = os.path.relpath(path, self.root)
            if rel.startswith(allowed_dir) or rel in allowed_files:
                continue
            for lineno, line in enumerate(
                    strip_comments(read(path)).splitlines(), 1):
                if pattern.search(line):
                    self.report(
                        path, lineno, "raw-threads",
                        "raw std::thread outside src/runtime/ — submit to "
                        "runtime::TaskPool (or spawn a runtime::Thread on a "
                        "legacy-mode path) so the process keeps one view of "
                        "available parallelism")

    # -- rule: process-control ------------------------------------------------

    def check_process_control(self):
        """Child-process lifecycle calls live only in src/distributed/.

        The DDP supervisor is the one place that forks, execs, signals and
        reaps workers; a fork() elsewhere in a process that already started
        the TaskPool clones a half-initialized runtime, and a stray
        waitpid() races the supervisor's reaper. Member calls like
        `task.kill(...)` are fine — only the bare/::-qualified libc names
        are matched.
        """
        allowed_dir = os.path.join("src", "distributed") + os.sep
        pattern = re.compile(
            r"(?<![\w.])(?:::\s*)?"
            r"(fork|vfork|execve|execv|execvp|execl|execlp|kill|waitpid)"
            r"\s*\(")
        for path in iter_source_files(self.root):
            rel = os.path.relpath(path, self.root)
            if rel.startswith(allowed_dir):
                continue
            for lineno, line in enumerate(
                    strip_comments(read(path)).splitlines(), 1):
                m = pattern.search(line)
                if m:
                    self.report(
                        path, lineno, "process-control",
                        f"{m.group(1)}() outside src/distributed/ — child-"
                        "process lifecycle belongs to the DDP supervisor")

    # -- rule: include-layers -----------------------------------------------

    def check_layers(self):
        include = re.compile(r'#include\s+"src/([^/"]+)/')
        for path in iter_source_files(self.root):
            rel = os.path.relpath(path, self.root)
            parts = rel.split(os.sep)
            if len(parts) < 3:  # src/<file> umbrella headers are exempt
                continue
            here = parts[1]
            if here not in LAYERS:
                self.report(path, 1, "include-layers",
                            f"directory 'src/{here}' has no layer "
                            "assignment — add it to LAYERS in sptx_lint.py")
                continue
            for lineno, line in enumerate(
                    strip_comments(read(path)).splitlines(), 1):
                m = include.search(line)
                if not m:
                    continue
                target = m.group(1)
                if target not in LAYERS:
                    if "." in target:  # src/sptransx.hpp-style umbrella
                        continue
                    self.report(path, lineno, "include-layers",
                                f"include of unlayered directory "
                                f"'src/{target}'")
                    continue
                if LAYERS[target] > LAYERS[here]:
                    self.report(
                        path, lineno, "include-layers",
                        f"'src/{here}' (layer {LAYERS[here]}) includes "
                        f"'src/{target}' (layer {LAYERS[target]}) — "
                        "includes must point sideways or down the layering")

    def run(self, rules=None):
        checks = {
            "env-getenv": self.check_getenv,
            "env-registry": self.check_registry,
            "counter-names": self.check_counter_names,
            "checkpoint-io": self.check_checkpoint_io,
            "rng-discipline": self.check_rng,
            "raw-threads": self.check_raw_threads,
            "process-control": self.check_process_control,
            "include-layers": self.check_layers,
        }
        for name, check in checks.items():
            if rules and name not in rules:
                continue
            check()
        return self.violations


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".",
                        help="repository root (contains src/)")
    parser.add_argument("--rule", action="append", dest="rules",
                        help="run only this rule (repeatable)")
    args = parser.parse_args(argv)
    violations = Linter(os.path.abspath(args.root)).run(args.rules)
    for v in violations:
        print(v)
    if violations:
        print(f"sptx_lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
