#!/usr/bin/env bash
# Run the SpMM perf benches and emit machine-readable results, so the
# kernel-performance trajectory is tracked from PR to PR.
#
#   tools/run_benches.sh [build_dir] [out_dir]
#
# Outputs (in out_dir, default repo root):
#   BENCH_spmm.json      google-benchmark JSON for bench_ablation_kernels
#                        (all forward kernels + both backward paths)
#   BENCH_hotspots.txt   bench_fig2_hotspots text artefact (dense-baseline
#                        profile that motivates the sparse formulation)
#   BENCH_pipeline.json  bench_pipeline: epoch-1 vs cached-epoch wall time
#                        per model family, prefetch on/off under shuffle
#   BENCH_ddp.json       bench_ddp: sharded multi-worker trainer over
#                        in-memory vs mmap-streamed stores (time, loss,
#                        sparse all-reduce rows, plan-cache traffic)
#   BENCH_serve.json     bench_serve: InferenceSession queries/sec,
#                        1 vs 4 threads, micro-batch coalescing off vs on
#
# Knobs: SPTX_BENCH_MIN_TIME (per-benchmark min time, default 0.2s),
# SPTX_EPOCHS / SPTX_SCALE forwarded to the hotspot bench as usual.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out_dir="${2:-$repo_root}"
min_time="${SPTX_BENCH_MIN_TIME:-0.2}"

if [[ ! -x "$build_dir/bench_ablation_kernels" ]]; then
  echo "bench_ablation_kernels not found in $build_dir — build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

echo "== SpMM kernel ablation -> $out_dir/BENCH_spmm.json"
"$build_dir/bench_ablation_kernels" \
  --benchmark_min_time="$min_time" \
  --benchmark_out="$out_dir/BENCH_spmm.json" \
  --benchmark_out_format=json

if [[ -x "$build_dir/bench_fig2_hotspots" ]]; then
  echo "== Training hotspots -> $out_dir/BENCH_hotspots.txt"
  SPTX_EPOCHS="${SPTX_EPOCHS:-2}" "$build_dir/bench_fig2_hotspots" \
    | tee "$out_dir/BENCH_hotspots.txt"
fi

if [[ -x "$build_dir/bench_pipeline" ]]; then
  echo "== BatchPlan pipeline -> $out_dir/BENCH_pipeline.json"
  "$build_dir/bench_pipeline" > "$out_dir/BENCH_pipeline.json"
fi

if [[ -x "$build_dir/bench_ddp" ]]; then
  echo "== Sharded DDP (memory vs streaming) -> $out_dir/BENCH_ddp.json"
  (cd "$build_dir" && ./bench_ddp) > "$out_dir/BENCH_ddp.json"
fi

if [[ -x "$build_dir/bench_serve" ]]; then
  echo "== Inference serving (threads x coalescing) -> $out_dir/BENCH_serve.json"
  (cd "$build_dir" && ./bench_serve) > "$out_dir/BENCH_serve.json"
fi

echo "done."
