#!/usr/bin/env bash
# Run the SpMM perf benches and emit machine-readable results, so the
# kernel-performance trajectory is tracked from PR to PR.
#
#   tools/run_benches.sh [build_dir] [out_dir]
#
# The build directory is configured AND built in Release here (an early
# BENCH_spmm.json was recorded from a debug build; every bench binary now
# also stamps its build_type into the JSON it emits, with a loud warning
# when it is not "release"). An existing build dir with a non-Release
# CMAKE_BUILD_TYPE is rejected — pass a different build_dir instead of
# silently mixing configurations.
#
# Outputs (in out_dir, default repo root):
#   BENCH_spmm.json      google-benchmark JSON for bench_ablation_kernels
#                        (all forward kernels + both backward paths)
#   BENCH_hotspots.txt   bench_fig2_hotspots text artefact (dense-baseline
#                        profile that motivates the sparse formulation)
#   BENCH_pipeline.json  bench_pipeline: epoch-1 vs cached-epoch wall time
#                        per model family, prefetch on/off under shuffle
#   BENCH_ddp.json       bench_ddp: sharded multi-worker trainer over
#                        in-memory vs mmap-streamed stores (time, loss,
#                        sparse all-reduce rows, plan-cache traffic)
#   BENCH_serve.json     bench_serve: InferenceSession queries/sec,
#                        1 vs 4 threads, micro-batch coalescing off vs on
#   BENCH_fused.json     bench_fused: fused (SPTX_FUSED=on) vs autograd
#                        (off) per-epoch training time for TransE / TransR /
#                        TorusE on the Fig-2 workload
#   BENCH_runtime.json   bench_runtime: TaskPool thread scaling (SpMM /
#                        fused epoch / serve QPS at 1-8 lanes) + composed
#                        train+serve, pool vs legacy threading
#
# Knobs: SPTX_BENCH_MIN_TIME (per-benchmark min time, default 0.2s),
# SPTX_EPOCHS / SPTX_SCALE forwarded to the hotspot bench as usual.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out_dir="${2:-$repo_root}"
min_time="${SPTX_BENCH_MIN_TIME:-0.2}"

if [[ -f "$build_dir/CMakeCache.txt" ]]; then
  cached_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$build_dir/CMakeCache.txt")"
  if [[ -n "$cached_type" && "$cached_type" != "Release" ]]; then
    echo "ERROR: $build_dir is configured as CMAKE_BUILD_TYPE=$cached_type." >&2
    echo "Bench numbers from non-Release builds are not comparable." >&2
    echo "Pass a fresh build dir: tools/run_benches.sh build-release" >&2
    exit 1
  fi
fi

echo "== Configure + build (Release) in $build_dir"
cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" -j"$(nproc)"

if [[ ! -x "$build_dir/bench_ablation_kernels" ]]; then
  echo "bench_ablation_kernels missing after the build — is google-benchmark" >&2
  echo "installed? Refusing to report a successful run with no kernel data." >&2
  exit 1
else
  echo "== SpMM kernel ablation -> $out_dir/BENCH_spmm.json"
  "$build_dir/bench_ablation_kernels" \
    --benchmark_min_time="$min_time" \
    --benchmark_out="$out_dir/BENCH_spmm.json" \
    --benchmark_out_format=json
  if grep -q '"library_build_type": "debug"' "$out_dir/BENCH_spmm.json"; then
    echo "WARNING: google-benchmark reports library_build_type=debug in" >&2
    echo "  BENCH_spmm.json — numbers are not comparable." >&2
  fi
fi

if [[ -x "$build_dir/bench_fig2_hotspots" ]]; then
  echo "== Training hotspots -> $out_dir/BENCH_hotspots.txt"
  SPTX_EPOCHS="${SPTX_EPOCHS:-2}" "$build_dir/bench_fig2_hotspots" \
    | tee "$out_dir/BENCH_hotspots.txt"
fi

if [[ -x "$build_dir/bench_pipeline" ]]; then
  echo "== BatchPlan pipeline -> $out_dir/BENCH_pipeline.json"
  "$build_dir/bench_pipeline" > "$out_dir/BENCH_pipeline.json"
fi

if [[ -x "$build_dir/bench_ddp" ]]; then
  echo "== Sharded DDP (memory vs streaming) -> $out_dir/BENCH_ddp.json"
  (cd "$build_dir" && ./bench_ddp) > "$out_dir/BENCH_ddp.json"
fi

if [[ -x "$build_dir/bench_serve" ]]; then
  echo "== Inference serving (threads x coalescing) -> $out_dir/BENCH_serve.json"
  (cd "$build_dir" && ./bench_serve) > "$out_dir/BENCH_serve.json"
fi

if [[ -x "$build_dir/bench_fused" ]]; then
  echo "== Fused vs autograd scoring kernels -> $out_dir/BENCH_fused.json"
  (cd "$build_dir" && ./bench_fused) > "$out_dir/BENCH_fused.json"
fi

if [[ -x "$build_dir/bench_runtime" ]]; then
  echo "== Runtime pool (thread scaling + composed) -> $out_dir/BENCH_runtime.json"
  (cd "$build_dir" && ./bench_runtime) > "$out_dir/BENCH_runtime.json"
fi

echo "done."
