// End-to-end integration tests: dataset → training → evaluation, the full
// pipeline a library user runs.
#include <gtest/gtest.h>

#include <cmath>
#include <algorithm>

#include "src/eval/link_prediction.hpp"
#include "src/kg/synthetic.hpp"
#include "src/models/model.hpp"
#include "src/profiling/flops.hpp"
#include "src/tensor/memory_tracker.hpp"
#include "src/train/trainer.hpp"

namespace sptx {
namespace {

TEST(Integration, TrainingImprovesLinkPrediction) {
  Rng rng(101);
  const kg::Dataset ds =
      kg::generate({"e2e", 120, 6, 2500}, rng, 0.0, 0.05, /*clusters=*/12);

  Rng model_rng(5);
  models::ModelConfig cfg;
  cfg.dim = 32;
  auto model = models::make_sparse_model("TransE", 120, 6, cfg, model_rng);

  eval::EvalConfig ec;
  ec.max_queries = 40;
  const auto before = eval::evaluate(*model, ds, ec);

  train::TrainConfig tc;
  tc.epochs = 80;
  tc.batch_size = 512;
  tc.lr = 1.0f;
  const auto result = train::train(*model, ds.train, tc);
  EXPECT_LT(result.epoch_loss.back(), result.epoch_loss.front());

  const auto after = eval::evaluate(*model, ds, ec);
  // Planted cluster structure is learnable: Hits@10 must improve clearly
  // over the untrained baseline.
  EXPECT_GT(after.hits_at_10, before.hits_at_10 + 0.05)
      << "before=" << before.hits_at_10 << " after=" << after.hits_at_10;
  EXPECT_GT(after.mrr, before.mrr);
}

TEST(Integration, SparseUsesFewerFlopsThanDense) {
  // Table 6's property at test scale: identical training protocol, the
  // sparse formulation spends fewer FLOPs than the gather/scatter baseline.
  Rng rng(102);
  const kg::Dataset ds = kg::generate({"flops", 100, 5, 1200}, rng, 0.0, 0.0);
  models::ModelConfig cfg;
  cfg.dim = 32;
  train::TrainConfig tc;
  tc.epochs = 3;
  tc.batch_size = 256;

  Rng r1(7), r2(7);
  auto sparse = models::make_sparse_model("TransE", 100, 5, cfg, r1);
  auto dense = models::make_dense_model("TransE", 100, 5, cfg, r2);

  const auto rs = train::train(*sparse, ds.train, tc);
  const auto rd = train::train(*dense, ds.train, tc);
  EXPECT_LT(rs.flops, rd.flops);
}

TEST(Integration, SparseUsesLessPeakMemoryThanDense) {
  // Table 5's property: fewer intermediates → lower training peak.
  Rng rng(103);
  const kg::Dataset ds = kg::generate({"mem", 100, 5, 2048}, rng, 0.0, 0.0);
  models::ModelConfig cfg;
  cfg.dim = 64;
  train::TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 2048;  // single large batch exposes intermediate cost

  Rng r1(8);
  auto sparse = models::make_sparse_model("TransE", 100, 5, cfg, r1);
  const auto rs = train::train(*sparse, ds.train, tc);

  Rng r2(8);
  auto dense = models::make_dense_model("TransE", 100, 5, cfg, r2);
  const auto rd = train::train(*dense, ds.train, tc);

  EXPECT_LT(rs.peak_bytes, rd.peak_bytes);
}

TEST(Integration, AllModelsCompleteFullPipeline) {
  Rng rng(104);
  const kg::Dataset ds = kg::generate({"all", 60, 4, 600}, rng, 0.0, 0.1);
  models::ModelConfig cfg;
  cfg.dim = 16;
  cfg.rel_dim = 8;
  train::TrainConfig tc;
  tc.epochs = 3;
  tc.batch_size = 256;
  eval::EvalConfig ec;
  ec.max_queries = 10;

  for (const char* name :
       {"TransE", "TransR", "TransH", "TorusE", "DistMult", "ComplEx",
        "RotatE"}) {
    Rng mr(9);
    auto model = models::make_sparse_model(name, 60, 4, cfg, mr);
    const auto result = train::train(*model, ds.train, tc);
    EXPECT_EQ(result.epoch_loss.size(), 3u) << name;
    const auto metrics = eval::evaluate(*model, ds, ec);
    EXPECT_GT(metrics.queries, 0) << name;
    EXPECT_GE(metrics.hits_at_10, 0.0) << name;
  }
}

TEST(Integration, BinaryDatasetRoundTripThenTrain) {
  Rng rng(105);
  kg::Dataset ds = kg::generate({"persist", 50, 4, 400}, rng, 0.0, 0.0);
  const std::string path = ::testing::TempDir() + "/persist.sptx";
  ds.save(path);
  const kg::Dataset loaded = kg::Dataset::load_binary(path);

  Rng mr(10);
  models::ModelConfig cfg;
  cfg.dim = 16;
  auto model = models::make_sparse_model(
      "TransE", loaded.num_entities(), loaded.num_relations(), cfg, mr);
  train::TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 128;
  const auto result = train::train(*model, loaded.train, tc);
  EXPECT_EQ(result.epoch_loss.size(), 2u);
  std::remove(path.c_str());
}

TEST(Integration, LargeBatchTrainsWithBoundedMemory) {
  // §1 contribution 3: large-batch training with a small footprint. The
  // batch-size sweep should show peak memory growing sub-linearly in batch
  // size for the sparse model relative to embedding-table size.
  Rng rng(106);
  const kg::Dataset ds =
      kg::generate({"large", 5000, 5, 8192}, rng, 0.0, 0.0);
  models::ModelConfig cfg;
  cfg.dim = 64;

  auto peak_for = [&](index_t batch) {
    Rng mr(11);
    auto model = models::make_sparse_model("TransE", 5000, 5, cfg, mr);
    train::TrainConfig tc;
    tc.epochs = 1;
    tc.batch_size = batch;
    return train::train(*model, ds.train, tc).peak_bytes;
  };
  const auto peak_small = peak_for(512);
  const auto peak_large = peak_for(8192);
  EXPECT_GT(peak_large, peak_small);
  // 16× batch must cost well under 16× peak (parameters dominate).
  EXPECT_LT(static_cast<double>(peak_large),
            8.0 * static_cast<double>(peak_small));
}

}  // namespace
}  // namespace sptx
