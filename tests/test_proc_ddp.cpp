// Multi-process elastic DDP, end to end: procs mode must produce
// bit-identical checkpoints to the threaded executor for any worker count
// and any model family — including runs where worker processes are
// SIGKILLed mid-epoch and respawned, stall their heartbeats, or drop
// transport frames — and the supervisor must never hang, leak children, or
// leave sockets behind on the abort paths. Workers here run in fork-only
// mode (DdpConfig::worker_exec empty): real child processes with their own
// address spaces, minus the exec (the CLI covers fork+exec).
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "src/common/error.hpp"
#include "src/common/fault.hpp"
#include "src/distributed/ddp.hpp"
#include "src/distributed/proc_ddp.hpp"
#include "src/kg/synthetic.hpp"
#include "src/models/checkpoint.hpp"
#include "src/models/model.hpp"
#include "src/models/snapshot.hpp"

namespace sptx {
namespace {

models::ModelConfig cfg8() {
  models::ModelConfig cfg;
  cfg.dim = 8;
  cfg.rel_dim = 4;
  return cfg;
}

kg::Dataset proc_dataset() {
  Rng rng(5);
  return kg::generate({"procddp", 40, 3, 400}, rng, 0.05, 0.1);
}

std::string ckpt_bytes(models::KgeModel& model) {
  static std::atomic<int> counter{0};
  const std::string path = ::testing::TempDir() + "/pddp_probe_" +
                           std::to_string(::getpid()) + "_" +
                           std::to_string(counter.fetch_add(1));
  models::save_checkpoint(model, path);
  std::ifstream is(path, std::ios::binary);
  std::ostringstream bytes;
  bytes << is.rdbuf();
  std::remove(path.c_str());
  return bytes.str();
}

void remove_rotations(const std::string& base) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path base_path(base);
  fs::path dir = base_path.parent_path();
  if (dir.empty()) dir = ".";
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().filename().string().starts_with(
            base_path.filename().string()))
      fs::remove(entry.path(), ec);
  }
}

/// No zombie children may survive a supervisor run: every spawn is reaped
/// on success AND on every abort path.
void expect_no_children() {
  int status = 0;
  errno = 0;
  const pid_t rc = ::waitpid(-1, &status, WNOHANG);
  EXPECT_TRUE(rc == -1 && errno == ECHILD)
      << "supervisor leaked a child process (waitpid returned " << rc << ")";
}

struct ProcFixture {
  kg::Dataset ds = proc_dataset();

  /// The threaded reference builds replicas via the factory (seeded from
  /// Rng(config.seed)); the procs supervisor builds from the spec with
  /// spec.seed overridden to config.seed — both sides start from the same
  /// make_sparse_model(family, n, r, cfg, Rng(config.seed)) parameters.
  std::function<std::unique_ptr<models::KgeModel>(Rng&)> factory(
      const std::string& family) const {
    const index_t n = ds.num_entities(), r = ds.num_relations();
    return [family, n, r](Rng& rng) {
      return models::make_sparse_model(family, n, r, cfg8(), rng);
    };
  }

  models::ModelSpec spec(const std::string& family) const {
    models::ModelSpec s;
    s.family = family;
    s.framework = "sparse";
    s.config = cfg8();
    return s;  // seed is overridden to config.seed by the supervisor
  }

  distributed::DdpConfig config(int workers) const {
    distributed::DdpConfig dc;
    dc.workers = workers;
    dc.epochs = 3;
    dc.batch_size = 128;
    dc.shard_size = 32;  // fixed decomposition: results worker-invariant
    dc.lr = 0.05f;
    dc.seed = 11;
    dc.mode = "procs";
    // worker_exec stays empty: fork-only child processes.
    return dc;
  }
};

// ---------------------------------------------------------------------------
// Bit-identity: procs == threads for every worker count × model family.
// ---------------------------------------------------------------------------

class ProcDdpFamilyTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ProcDdpFamilyTest, BitIdenticalToThreadsForAnyWorkerCount) {
  ProcFixture fx;
  const std::string family = GetParam();

  auto threads_dc = fx.config(3);
  threads_dc.mode = "threads";
  const auto reference =
      distributed::train_ddp(fx.factory(family), fx.ds.train, threads_dc);
  const std::string want = ckpt_bytes(*reference.model);

  for (int workers : {1, 2, 4}) {
    const auto procs = distributed::train_ddp_procs(
        fx.spec(family), fx.ds.train, fx.config(workers));
    EXPECT_EQ(ckpt_bytes(*procs.model), want)
        << family << " with " << workers << " worker processes diverged";
    ASSERT_EQ(procs.epoch_loss.size(), reference.epoch_loss.size());
    for (std::size_t i = 0; i < reference.epoch_loss.size(); ++i)
      EXPECT_FLOAT_EQ(procs.epoch_loss[i], reference.epoch_loss[i])
          << family << " workers=" << workers << " epoch " << i;
    EXPECT_EQ(procs.workers, workers);
    EXPECT_EQ(procs.workers_lost, 0);
  }
  expect_no_children();
}

INSTANTIATE_TEST_SUITE_P(Families, ProcDdpFamilyTest,
                         ::testing::Values("TransE", "TransR", "DistMult"));

// ---------------------------------------------------------------------------
// Elasticity drills.
// ---------------------------------------------------------------------------

TEST(ProcDdp, SigkillMidEpochRespawnsAndStaysBitIdentical) {
  ProcFixture fx;
  const auto clean = distributed::train_ddp_procs(fx.spec("TransE"),
                                                  fx.ds.train, fx.config(2));
  const std::string want = ckpt_bytes(*clean.model);

  // Worker 1 _Exit(137)s (no destructors — a true SIGKILL stand-in) before
  // its first owned shard of epoch 1. The supervisor re-runs its shards,
  // finishes the epoch, and respawns the rank from a synced checkpoint.
  auto dc = fx.config(2);
  dc.max_worker_retries = 4;
  fault::install("ddp_proc_kill:die@1:1");
  const auto recovered =
      distributed::train_ddp_procs(fx.spec("TransE"), fx.ds.train, dc);
  fault::clear();

  EXPECT_GE(recovered.workers_lost, 1);
  EXPECT_GE(recovered.workers_respawned, 1);
  EXPECT_EQ(ckpt_bytes(*recovered.model), want);
  ASSERT_EQ(recovered.epoch_loss.size(), clean.epoch_loss.size());
  for (std::size_t i = 0; i < clean.epoch_loss.size(); ++i)
    EXPECT_FLOAT_EQ(recovered.epoch_loss[i], clean.epoch_loss[i]);
  expect_no_children();
}

TEST(ProcDdp, HeartbeatStallIsDetectedAndDegradeFinishes) {
  ProcFixture fx;
  // Enough work that the run comfortably outlives the liveness deadline
  // (stall detection needs wall-clock, not batches).
  Rng rng(9);
  fx.ds = kg::generate({"procddp_hb", 120, 4, 6000}, rng, 0.05, 0.1);
  // One shard per batch, owner rank 0 — rank 1 never sends a data frame,
  // so suppressed beacons are its only sign of life.
  auto dc = fx.config(2);
  dc.epochs = 10;
  dc.shard_size = dc.batch_size;
  dc.heartbeat_ms = 40;
  dc.policy = "degrade";
  dc.max_worker_retries = 0;

  auto ref_dc = dc;
  ref_dc.mode = "threads";
  const auto reference =
      distributed::train_ddp(fx.factory("TransE"), fx.ds.train, ref_dc);

  fault::install("heartbeat_stall:die@1");
  const auto stalled =
      distributed::train_ddp_procs(fx.spec("TransE"), fx.ds.train, dc);
  fault::clear();

  EXPECT_GE(stalled.workers_lost, 1);
  EXPECT_EQ(ckpt_bytes(*stalled.model), ckpt_bytes(*reference.model));
  expect_no_children();
}

TEST(ProcDdp, TransportDropsRetryAndStayBitIdentical) {
  ProcFixture fx;
  const auto clean = distributed::train_ddp_procs(fx.spec("TransE"),
                                                  fx.ds.train, fx.config(2));
  const std::string want = ckpt_bytes(*clean.model);

  // ~10% of outgoing frames (both directions) fail on first attempt; the
  // send loop retries in place. eio decisions hash (seed, site, hit), so
  // this exact schedule replays.
  fault::install("transport_drop:eio@0.1", 7);
  const auto flaky =
      distributed::train_ddp_procs(fx.spec("TransE"), fx.ds.train,
                                   fx.config(2));
  fault::clear();

  EXPECT_GE(flaky.transport_retries, 1);
  EXPECT_EQ(ckpt_bytes(*flaky.model), want);
  expect_no_children();
}

// ---------------------------------------------------------------------------
// Abort paths: strict flushes + throws, degrade survives, nothing leaks.
// ---------------------------------------------------------------------------

TEST(ProcDdp, StrictPolicyAbortsCleanlyWithValidFlushAndNoOrphans) {
  ProcFixture fx;
  auto dc = fx.config(2);
  dc.max_worker_retries = 0;
  dc.policy = "strict";
  dc.checkpoint_path = ::testing::TempDir() + "/pddp_abort";
  std::remove((dc.checkpoint_path + ".abort").c_str());

  fault::install("ddp_proc_kill:die@0:1");
  try {
    distributed::train_ddp_procs(fx.spec("TransE"), fx.ds.train, dc);
    fault::clear();
    FAIL() << "respawn budget 0 under strict policy must abort";
  } catch (const Error& e) {
    fault::clear();
    EXPECT_EQ(e.code(), ErrorCode::kWorkerLost);
  }

  // The abort flushed consistent parameters; a fresh model loads them.
  Rng rng(1);
  auto model = fx.factory("TransE")(rng);
  EXPECT_NO_THROW(
      models::load_checkpoint(*model, dc.checkpoint_path + ".abort"));

  // Every child is reaped and the run directory (socket included) is gone.
  expect_no_children();
  int leftover = 0;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(
           std::filesystem::temp_directory_path(), ec))
    if (entry.path().filename().string().starts_with("sptx-ddp-" +
                                                     std::to_string(getpid())))
      ++leftover;
  EXPECT_EQ(leftover, 0) << "abort leaked a supervisor run directory";

  // The stale flush must be invisible to rotation: never resumed from,
  // never pruned, and named in the resume-failure diagnostic.
  EXPECT_FALSE(models::latest_checkpoint(dc.checkpoint_path).has_value());
  auto dc_resume = fx.config(2);
  dc_resume.resume_from = dc.checkpoint_path;
  try {
    distributed::train_ddp_procs(fx.spec("TransE"), fx.ds.train, dc_resume);
    FAIL() << "resume from a base with only an .abort sibling must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIo);
    EXPECT_NE(std::string(e.what()).find(".abort"), std::string::npos)
        << "resume error does not mention the stale abort flush: "
        << e.what();
  }
  std::remove((dc.checkpoint_path + ".abort").c_str());
}

TEST(ProcDdp, DegradePolicyFinishesOnSurvivorsBitIdentically) {
  ProcFixture fx;
  const auto clean = distributed::train_ddp_procs(fx.spec("TransE"),
                                                  fx.ds.train, fx.config(2));

  auto dc = fx.config(2);
  dc.max_worker_retries = 0;
  dc.policy = "degrade";
  fault::install("ddp_proc_kill:die@0:1");
  const auto degraded =
      distributed::train_ddp_procs(fx.spec("TransE"), fx.ds.train, dc);
  fault::clear();

  EXPECT_GE(degraded.workers_lost, 1);
  EXPECT_EQ(degraded.workers_respawned, 0);  // budget 0: no respawn
  EXPECT_EQ(ckpt_bytes(*degraded.model), ckpt_bytes(*clean.model));
  expect_no_children();
}

// ---------------------------------------------------------------------------
// Crash-safe checkpoint/resume in procs mode.
// ---------------------------------------------------------------------------

TEST(ProcDdp, CheckpointResumeMatchesUninterrupted) {
  ProcFixture fx;
  auto dc = fx.config(2);
  dc.epochs = 4;
  const auto full =
      distributed::train_ddp_procs(fx.spec("TransE"), fx.ds.train, dc);
  const std::string want = ckpt_bytes(*full.model);

  const std::string base = ::testing::TempDir() + "/pddp_resume";
  remove_rotations(base);
  auto dc_ckpt = dc;
  dc_ckpt.checkpoint_every = 2;
  dc_ckpt.checkpoint_path = base;
  const auto half =
      distributed::train_ddp_procs(fx.spec("TransE"), fx.ds.train, dc_ckpt);
  EXPECT_EQ(half.checkpoints_written, 1);  // ep2 (4 is the final state)
  EXPECT_EQ(ckpt_bytes(*half.model), want);

  auto dc_resume = dc;
  dc_resume.resume_from = base;
  const auto resumed =
      distributed::train_ddp_procs(fx.spec("TransE"), fx.ds.train,
                                   dc_resume);
  EXPECT_EQ(resumed.start_epoch, 2);
  EXPECT_EQ(ckpt_bytes(*resumed.model), want);
  ASSERT_EQ(resumed.epoch_loss.size(), full.epoch_loss.size());
  for (std::size_t i = 0; i < full.epoch_loss.size(); ++i)
    EXPECT_FLOAT_EQ(resumed.epoch_loss[i], full.epoch_loss[i]);
  remove_rotations(base);
  expect_no_children();
}

// ---------------------------------------------------------------------------
// Health surface.
// ---------------------------------------------------------------------------

TEST(ProcDdp, HealthJsonReflectsTheLastRun) {
  ProcFixture fx;
  auto dc = fx.config(2);
  dc.max_worker_retries = 4;
  fault::install("ddp_proc_kill:die@1:0");
  (void)distributed::train_ddp_procs(fx.spec("TransE"), fx.ds.train, dc);
  fault::clear();

  const std::string json = distributed::ddp_health_json();
  EXPECT_NE(json.find("\"mode\": \"procs\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"active\": false"), std::string::npos) << json;
  EXPECT_NE(json.find("\"lost\": "), std::string::npos) << json;
  EXPECT_NE(json.find("\"transport\""), std::string::npos) << json;
  EXPECT_EQ(json.find("\"lost\": 0"), std::string::npos)
      << "lost count missing the injected death: " << json;
  expect_no_children();
}

}  // namespace
}  // namespace sptx
