// Parameterized shape sweeps: every differentiable op gradient-checked
// across a grid of matrix shapes (degenerate, tall, wide, odd sizes).
#include <gtest/gtest.h>

#include "gradcheck.hpp"
#include "src/autograd/ops.hpp"
#include "src/common/rng.hpp"

namespace sptx {
namespace {

using autograd::Variable;
using testing::expect_gradient_matches;

struct Shape {
  index_t rows;
  index_t cols;
};

class OpShapeSweep : public ::testing::TestWithParam<Shape> {
 protected:
  Matrix random(std::uint64_t seed, float lo = -1.0f, float hi = 1.0f) {
    Rng rng(seed);
    Matrix m(GetParam().rows, GetParam().cols);
    m.fill_uniform(rng, lo, hi);
    return m;
  }
};

TEST_P(OpShapeSweep, AddGradient) {
  Matrix other = random(1);
  expect_gradient_matches(random(2), [&](Variable& p) {
    Variable c = Variable::leaf(other, false);
    return autograd::sum_all(autograd::add(p, c));
  });
}

TEST_P(OpShapeSweep, MulGradient) {
  Matrix other = random(3);
  expect_gradient_matches(random(4), [&](Variable& p) {
    Variable c = Variable::leaf(other, false);
    return autograd::mean_all(autograd::mul(p, c));
  });
}

TEST_P(OpShapeSweep, ScaleGradient) {
  expect_gradient_matches(random(5), [&](Variable& p) {
    return autograd::sum_all(autograd::scale(p, -1.7f));
  });
}

TEST_P(OpShapeSweep, RowSquaredL2Gradient) {
  expect_gradient_matches(random(6), [&](Variable& p) {
    return autograd::sum_all(autograd::row_squared_l2(p));
  });
}

TEST_P(OpShapeSweep, RowL2Gradient) {
  // Keep away from the ||x||=0 kink.
  expect_gradient_matches(random(7, 0.4f, 1.2f), [&](Variable& p) {
    return autograd::sum_all(autograd::row_l2(p));
  });
}

TEST_P(OpShapeSweep, RowDotGradient) {
  Matrix other = random(8);
  expect_gradient_matches(random(9), [&](Variable& p) {
    Variable c = Variable::leaf(other, false);
    return autograd::sum_all(autograd::row_dot(p, c));
  });
}

TEST_P(OpShapeSweep, GatherGradientWithRepeats) {
  const index_t rows = GetParam().rows;
  auto idx = std::make_shared<std::vector<index_t>>();
  // Deliberately hit row 0 multiple times plus a spread of rows.
  idx->push_back(0);
  idx->push_back(rows - 1);
  idx->push_back(0);
  idx->push_back(rows / 2);
  expect_gradient_matches(random(10), [&](Variable& p) {
    return autograd::sum_all(autograd::gather(p, idx));
  });
}

TEST_P(OpShapeSweep, TorusGradientAwayFromKinks) {
  expect_gradient_matches(random(11, 0.05f, 0.45f), [&](Variable& p) {
    return autograd::sum_all(autograd::row_squared_l2_torus(p));
  });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, OpShapeSweep,
    ::testing::Values(Shape{1, 1}, Shape{1, 7}, Shape{5, 1}, Shape{3, 4},
                      Shape{2, 16}, Shape{9, 3}),
    [](const ::testing::TestParamInfo<Shape>& param_info) {
      return std::to_string(param_info.param.rows) + "x" +
             std::to_string(param_info.param.cols);
    });

// Forward-value identities that must hold at any shape.
class OpIdentitySweep : public ::testing::TestWithParam<Shape> {};

TEST_P(OpIdentitySweep, SubOfSelfIsZero) {
  Rng rng(20);
  Matrix m(GetParam().rows, GetParam().cols);
  m.fill_uniform(rng, -5, 5);
  Variable x = Variable::leaf(m, true);
  const Matrix diff = autograd::sub(x, x).value();
  EXPECT_EQ(diff.max_abs(), 0.0f);
}

TEST_P(OpIdentitySweep, ScaleByOneIsIdentity) {
  Rng rng(21);
  Matrix m(GetParam().rows, GetParam().cols);
  m.fill_uniform(rng, -5, 5);
  Variable x = Variable::leaf(m, false);
  EXPECT_EQ(max_abs_diff(autograd::scale(x, 1.0f).value(), m), 0.0f);
}

TEST_P(OpIdentitySweep, MeanTimesCountEqualsSum) {
  Rng rng(22);
  Matrix m(GetParam().rows, GetParam().cols);
  m.fill_uniform(rng, -2, 2);
  Variable x = Variable::leaf(m, false);
  const float sum = autograd::sum_all(x).value().at(0, 0);
  const float mean = autograd::mean_all(x).value().at(0, 0);
  EXPECT_NEAR(mean * static_cast<float>(m.size()), sum,
              1e-4f * (1.0f + std::fabs(sum)));
}

TEST_P(OpIdentitySweep, RowDotWithSelfIsSquaredL2) {
  Rng rng(23);
  Matrix m(GetParam().rows, GetParam().cols);
  m.fill_uniform(rng, -2, 2);
  Variable x = Variable::leaf(m, false);
  const Matrix dot = autograd::row_dot(x, x).value();
  const Matrix sq = autograd::row_squared_l2(x).value();
  EXPECT_LT(max_abs_diff(dot, sq), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, OpIdentitySweep,
    ::testing::Values(Shape{1, 1}, Shape{4, 4}, Shape{1, 33}, Shape{17, 2}),
    [](const ::testing::TestParamInfo<Shape>& param_info) {
      return std::to_string(param_info.param.rows) + "x" +
             std::to_string(param_info.param.cols);
    });

}  // namespace
}  // namespace sptx
