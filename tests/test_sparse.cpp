// Tests for sparse matrix storage and conversions.
#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/sparse/sparse_matrix.hpp"

namespace sptx {
namespace {

Coo random_coo(index_t rows, index_t cols, index_t nnz, Rng& rng) {
  Coo coo;
  coo.rows = rows;
  coo.cols = cols;
  for (index_t k = 0; k < nnz; ++k) {
    coo.push(static_cast<index_t>(rng.next_below(
                 static_cast<std::uint64_t>(rows))),
             static_cast<index_t>(
                 rng.next_below(static_cast<std::uint64_t>(cols))),
             rng.uniform(-2, 2));
  }
  return coo;
}

TEST(Sparse, CooPushTracksNnz) {
  Coo coo;
  coo.rows = 2;
  coo.cols = 3;
  coo.push(0, 1, 1.0f);
  coo.push(1, 2, -1.0f);
  EXPECT_EQ(coo.nnz(), 2);
}

TEST(Sparse, CooToCsrPreservesEntries) {
  Coo coo;
  coo.rows = 3;
  coo.cols = 4;
  coo.push(2, 0, 5.0f);
  coo.push(0, 3, 1.0f);
  coo.push(2, 2, -2.0f);
  const Csr csr = coo_to_csr(coo);
  EXPECT_EQ(csr.nnz(), 3);
  EXPECT_EQ(csr.row_nnz(0), 1);
  EXPECT_EQ(csr.row_nnz(1), 0);
  EXPECT_EQ(csr.row_nnz(2), 2);
  EXPECT_LT(max_abs_diff(to_dense(coo), to_dense(csr)), 1e-7f);
}

TEST(Sparse, CsrToCooRoundTrips) {
  Rng rng(21);
  const Coo coo = random_coo(10, 8, 25, rng);
  const Csr csr = coo_to_csr(coo);
  const Coo back = csr_to_coo(csr);
  EXPECT_LT(max_abs_diff(to_dense(coo), to_dense(back)), 1e-7f);
}

TEST(Sparse, TransposeMatchesDenseTranspose) {
  Rng rng(22);
  const Coo coo = random_coo(6, 9, 20, rng);
  const Csr csr = coo_to_csr(coo);
  const Csr t = transpose(csr);
  EXPECT_EQ(t.rows, 9);
  EXPECT_EQ(t.cols, 6);
  const Matrix d = to_dense(csr);
  const Matrix dt = to_dense(t);
  for (index_t i = 0; i < d.rows(); ++i)
    for (index_t j = 0; j < d.cols(); ++j)
      EXPECT_FLOAT_EQ(dt.at(j, i), d.at(i, j));
}

TEST(Sparse, DoubleTransposeIsIdentity) {
  Rng rng(23);
  const Csr csr = coo_to_csr(random_coo(12, 7, 30, rng));
  const Csr tt = transpose(transpose(csr));
  EXPECT_LT(max_abs_diff(to_dense(csr), to_dense(tt)), 1e-7f);
}

TEST(Sparse, EmptyMatrixConversions) {
  Coo coo;
  coo.rows = 4;
  coo.cols = 4;
  const Csr csr = coo_to_csr(coo);
  EXPECT_EQ(csr.nnz(), 0);
  EXPECT_EQ(csr.row_ptr.size(), 5u);
  const Csr t = transpose(csr);
  EXPECT_EQ(t.nnz(), 0);
}

TEST(Sparse, DuplicateEntriesSumInDense) {
  // COO may carry duplicates (self-loop incidence rows do); dense rendering
  // must sum them, matching SpMM's accumulate semantics.
  Coo coo;
  coo.rows = 1;
  coo.cols = 2;
  coo.push(0, 0, 1.0f);
  coo.push(0, 0, -1.0f);
  coo.push(0, 1, 2.0f);
  const Matrix d = to_dense(coo);
  EXPECT_FLOAT_EQ(d.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(d.at(0, 1), 2.0f);
}

class SparseRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(SparseRandomTest, ConversionChainPreservesStructure) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const index_t rows = 1 + static_cast<index_t>(rng.next_below(40));
  const index_t cols = 1 + static_cast<index_t>(rng.next_below(40));
  const index_t nnz = static_cast<index_t>(rng.next_below(100));
  const Coo coo = random_coo(rows, cols, nnz, rng);
  const Csr csr = coo_to_csr(coo);
  EXPECT_EQ(csr.nnz(), coo.nnz());
  // row_ptr is monotone and bounded.
  for (std::size_t r = 0; r + 1 < csr.row_ptr.size(); ++r)
    EXPECT_LE(csr.row_ptr[r], csr.row_ptr[r + 1]);
  EXPECT_EQ(csr.row_ptr.back(), csr.nnz());
  EXPECT_LT(max_abs_diff(to_dense(coo), to_dense(csr)), 1e-7f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseRandomTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace sptx
