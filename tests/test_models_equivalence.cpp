// §6.2.5: "The sparse approach does not change the computational steps and
// thus does not affect the model accuracy." — the strongest correctness
// property in the paper. With identical seeds, the sparse and dense
// implementations must produce the same scores, the same losses, and the
// same parameters after training steps (up to float accumulation noise).
#include <gtest/gtest.h>

#include <cmath>
#include <algorithm>

#include "src/kg/negative_sampler.hpp"
#include "src/kg/synthetic.hpp"
#include "src/models/model.hpp"
#include "src/nn/optim.hpp"

namespace sptx {
namespace {

using models::ModelConfig;

ModelConfig config_for(const std::string& name) {
  ModelConfig cfg;
  cfg.dim = 12;
  cfg.rel_dim = name == "TransR" ? 6 : 12;
  return cfg;
}

struct Batches {
  std::vector<Triplet> pos;
  std::vector<Triplet> neg;
};

Batches make_batches(index_t n, index_t r, std::uint64_t seed) {
  Rng rng(seed);
  kg::Dataset ds = kg::generate({"eq", n, r, 300}, rng, 0.0, 0.0);
  kg::NegativeSampler sampler(ds.train, kg::CorruptionScheme::kUniform);
  Batches b;
  b.pos.assign(ds.train.triplets().begin(), ds.train.triplets().end());
  b.neg = sampler.pregenerate(b.pos, rng);
  return b;
}

class EquivalenceTest : public ::testing::TestWithParam<const char*> {};

TEST_P(EquivalenceTest, InitialScoresMatch) {
  const std::string name = GetParam();
  const ModelConfig cfg = config_for(name);
  Rng rng_sparse(77), rng_dense(77);
  auto sparse = models::make_sparse_model(name, 40, 4, cfg, rng_sparse);
  auto dense = models::make_dense_model(name, 40, 4, cfg, rng_dense);
  const Batches b = make_batches(40, 4, 1);
  const auto ss = sparse->score(b.pos);
  const auto ds = dense->score(b.pos);
  ASSERT_EQ(ss.size(), ds.size());
  for (std::size_t i = 0; i < ss.size(); ++i)
    EXPECT_NEAR(ss[i], ds[i], 1e-4f * (1.0f + std::fabs(ds[i]))) << i;
}

TEST_P(EquivalenceTest, InitialLossMatches) {
  const std::string name = GetParam();
  const ModelConfig cfg = config_for(name);
  Rng rng_sparse(78), rng_dense(78);
  auto sparse = models::make_sparse_model(name, 40, 4, cfg, rng_sparse);
  auto dense = models::make_dense_model(name, 40, 4, cfg, rng_dense);
  const Batches b = make_batches(40, 4, 2);
  const float ls = sparse->loss(b.pos, b.neg).value().at(0, 0);
  const float ld = dense->loss(b.pos, b.neg).value().at(0, 0);
  EXPECT_NEAR(ls, ld, 1e-4f * (1.0f + std::fabs(ld)));
}

TEST_P(EquivalenceTest, LossTrajectoriesTrackUnderSgd) {
  // Train both for 15 steps; losses must track closely the whole way —
  // the sparse formulation computes the same gradients (Appendix G).
  const std::string name = GetParam();
  const ModelConfig cfg = config_for(name);
  Rng rng_sparse(79), rng_dense(79);
  auto sparse = models::make_sparse_model(name, 40, 4, cfg, rng_sparse);
  auto dense = models::make_dense_model(name, 40, 4, cfg, rng_dense);
  const Batches b = make_batches(40, 4, 3);
  nn::Sgd opt_s(sparse->params(), 0.02f);
  nn::Sgd opt_d(dense->params(), 0.02f);
  for (int step = 0; step < 15; ++step) {
    opt_s.zero_grad();
    opt_d.zero_grad();
    autograd::Variable ls = sparse->loss(b.pos, b.neg);
    autograd::Variable ld = dense->loss(b.pos, b.neg);
    EXPECT_NEAR(ls.value().at(0, 0), ld.value().at(0, 0),
                2e-3f * (1.0f + std::fabs(ld.value().at(0, 0))))
        << "diverged at step " << step;
    ls.backward();
    ld.backward();
    opt_s.step();
    opt_d.step();
    sparse->post_step();
    dense->post_step();
  }
}

TEST_P(EquivalenceTest, GradientsMatchBetweenFormulations) {
  // Compare d loss / d (entity embeddings) elementwise after one backward.
  const std::string name = GetParam();
  const ModelConfig cfg = config_for(name);
  Rng rng_sparse(80), rng_dense(80);
  auto sparse = models::make_sparse_model(name, 30, 4, cfg, rng_sparse);
  auto dense = models::make_dense_model(name, 30, 4, cfg, rng_dense);
  const Batches b = make_batches(30, 4, 4);
  for (auto& p : sparse->params()) p.zero_grad();
  for (auto& p : dense->params()) p.zero_grad();
  sparse->loss(b.pos, b.neg).backward();
  dense->loss(b.pos, b.neg).backward();

  // The sparse TransE/TorusE stack entities+relations in one table; dense
  // keeps two. Compare the entity block against the dense entity table.
  auto sparse_params = sparse->params();
  auto dense_params = dense->params();
  const Matrix& gs = sparse_params[0].grad();
  const Matrix& gd = dense_params[0].grad();
  const index_t entity_rows = std::min(gs.rows(), gd.rows());
  for (index_t i = 0; i < entity_rows; ++i) {
    for (index_t j = 0; j < std::min(gs.cols(), gd.cols()); ++j) {
      EXPECT_NEAR(gs.at(i, j), gd.at(i, j),
                  1e-4f * (1.0f + std::fabs(gd.at(i, j))))
          << "entity grad mismatch at (" << i << "," << j << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPairs, EquivalenceTest,
                         ::testing::Values("TransE", "TransR", "TransH",
                                           "TorusE"));

}  // namespace
}  // namespace sptx
