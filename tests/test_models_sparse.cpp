// Behavioural tests for the four SpTransX models.
#include <gtest/gtest.h>

#include <cmath>
#include <algorithm>

#include "src/kg/negative_sampler.hpp"
#include "src/kg/synthetic.hpp"
#include "src/models/model.hpp"
#include "src/nn/optim.hpp"

namespace sptx {
namespace {

using models::ModelConfig;

struct Fixture {
  kg::Dataset ds;
  std::vector<Triplet> pos;
  std::vector<Triplet> neg;

  explicit Fixture(std::uint64_t seed = 11) {
    Rng rng(seed);
    ds = kg::generate({"toy", 60, 5, 400}, rng, 0.0, 0.0);
    kg::NegativeSampler sampler(ds.train, kg::CorruptionScheme::kUniform);
    pos.assign(ds.train.triplets().begin(), ds.train.triplets().end());
    neg = sampler.pregenerate(pos, rng);
  }
};

ModelConfig small_config() {
  ModelConfig cfg;
  cfg.dim = 16;
  cfg.rel_dim = 8;
  return cfg;
}

class SparseModelTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SparseModelTest, LossIsFiniteAndNonNegative) {
  Fixture fx;
  Rng rng(1);
  auto model = models::make_sparse_model(GetParam(), 60, 5, small_config(),
                                         rng);
  autograd::Variable loss = model->loss(fx.pos, fx.neg);
  const float v = loss.value().at(0, 0);
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_GE(v, 0.0f);
}

TEST_P(SparseModelTest, TrainingStepsReduceLoss) {
  Fixture fx;
  Rng rng(2);
  auto model = models::make_sparse_model(GetParam(), 60, 5, small_config(),
                                         rng);
  nn::Sgd opt(model->params(), 0.05f);
  float first = 0.0f, last = 0.0f;
  for (int step = 0; step < 30; ++step) {
    opt.zero_grad();
    autograd::Variable loss = model->loss(fx.pos, fx.neg);
    if (step == 0) first = loss.value().at(0, 0);
    last = loss.value().at(0, 0);
    loss.backward();
    opt.step();
    model->post_step();
  }
  EXPECT_LT(last, first) << "margin loss should decrease under SGD";
}

TEST_P(SparseModelTest, ScoreSeparatesPositivesFromRandomAfterTraining) {
  Fixture fx;
  Rng rng(3);
  auto model = models::make_sparse_model(GetParam(), 60, 5, small_config(),
                                         rng);
  nn::Sgd opt(model->params(), 0.3f);
  for (int step = 0; step < 120; ++step) {
    opt.zero_grad();
    autograd::Variable loss = model->loss(fx.pos, fx.neg);
    loss.backward();
    opt.step();
    model->post_step();
  }
  const auto pos_scores = model->score(fx.pos);
  const auto neg_scores = model->score(fx.neg);
  double pos_mean = 0.0, neg_mean = 0.0;
  for (float s : pos_scores) pos_mean += s;
  for (float s : neg_scores) neg_mean += s;
  pos_mean /= static_cast<double>(pos_scores.size());
  neg_mean /= static_cast<double>(neg_scores.size());
  if (model->higher_is_better()) {
    EXPECT_GT(pos_mean, neg_mean);
  } else {
    EXPECT_LT(pos_mean, neg_mean);
  }
}

TEST_P(SparseModelTest, ScoreMatchesAutogradDistance) {
  // The fast eval path and the autograd forward must agree.
  Fixture fx;
  Rng rng(4);
  auto model = models::make_sparse_model(GetParam(), 60, 5, small_config(),
                                         rng);
  const std::span<const Triplet> batch(fx.pos.data(), 32);
  const auto fast = model->score(batch);
  // Use loss() indirectly: distance exposed only on some classes, so
  // compare through score consistency on duplicated batch instead.
  const auto fast2 = model->score(batch);
  ASSERT_EQ(fast.size(), fast2.size());
  for (std::size_t i = 0; i < fast.size(); ++i)
    EXPECT_FLOAT_EQ(fast[i], fast2[i]);
  EXPECT_TRUE(std::isfinite(fast[0]));
}

TEST_P(SparseModelTest, DeterministicConstructionGivenSeed) {
  Rng rng1(5), rng2(5);
  auto m1 = models::make_sparse_model(GetParam(), 30, 4, small_config(),
                                      rng1);
  auto m2 = models::make_sparse_model(GetParam(), 30, 4, small_config(),
                                      rng2);
  Fixture fx;
  std::vector<Triplet> batch(fx.pos.begin(), fx.pos.begin() + 16);
  for (Triplet& t : batch) {
    t.head %= 30;
    t.tail %= 30;
    t.relation %= 4;
  }
  const auto s1 = m1->score(batch);
  const auto s2 = m2->score(batch);
  for (std::size_t i = 0; i < s1.size(); ++i) EXPECT_FLOAT_EQ(s1[i], s2[i]);
}

INSTANTIATE_TEST_SUITE_P(AllSparse, SparseModelTest,
                         ::testing::Values("TransE", "TransR", "TransH",
                                           "TorusE"));

TEST(SparseModels, TransENormalizationKeepsEntitiesUnit) {
  Rng rng(6);
  ModelConfig cfg = small_config();
  auto model = models::make_sparse_model("TransE", 20, 3, cfg, rng);
  model->post_step();
  Fixture fx;
  std::vector<Triplet> batch = {{0, 0, 1}};
  // After normalization, score of (h, r, t) is bounded by ||h|| + ||r|| +
  // ||t|| ≤ 2 + ||r||; just assert finiteness and the unit-norm property
  // via repeated post_step idempotence.
  const auto s1 = model->score(batch);
  model->post_step();
  const auto s2 = model->score(batch);
  EXPECT_FLOAT_EQ(s1[0], s2[0]) << "post_step must be idempotent";
}

TEST(SparseModels, L1ConfigurationsWork) {
  Rng rng(7);
  ModelConfig cfg = small_config();
  cfg.dissimilarity = models::Dissimilarity::kL1;
  Fixture fx;
  for (const char* name : {"TransE", "TransR", "TransH", "TorusE"}) {
    auto model = models::make_sparse_model(name, 60, 5, cfg, rng);
    autograd::Variable loss = model->loss(
        std::span<const Triplet>(fx.pos.data(), 64),
        std::span<const Triplet>(fx.neg.data(), 64));
    EXPECT_TRUE(std::isfinite(loss.value().at(0, 0))) << name;
    loss.backward();  // must not throw
  }
}

TEST(SparseModels, UnknownNameThrows) {
  Rng rng(8);
  EXPECT_THROW(models::make_sparse_model("Nope", 10, 2, small_config(), rng),
               Error);
  EXPECT_THROW(models::make_dense_model("DistMult", 10, 2, small_config(),
                                        rng),
               Error);
}

TEST(SparseModels, TorusEScoresAreTorusBounded) {
  // Torus component distance is ≤ 1/2, so squared-L2 torus score ≤ d/4.
  Rng rng(9);
  ModelConfig cfg = small_config();
  auto model = models::make_sparse_model("TorusE", 30, 3, cfg, rng);
  std::vector<Triplet> batch;
  for (std::int64_t i = 0; i < 20; ++i)
    batch.push_back({i % 30, i % 3, (i * 7 + 1) % 30});
  for (float s : model->score(batch)) {
    EXPECT_GE(s, 0.0f);
    EXPECT_LE(s, static_cast<float>(cfg.dim) / 4.0f + 1e-4f);
  }
}

}  // namespace
}  // namespace sptx
