// Behavioural tests for the Appendix D semiring extension models.
#include <gtest/gtest.h>

#include <cmath>
#include <algorithm>

#include "src/kg/negative_sampler.hpp"
#include "src/kg/synthetic.hpp"
#include "src/models/model.hpp"
#include "src/nn/optim.hpp"

namespace sptx {
namespace {

using models::ModelConfig;

struct Fixture {
  std::vector<Triplet> pos;
  std::vector<Triplet> neg;
  Fixture() {
    Rng rng(21);
    kg::Dataset ds = kg::generate({"sr", 50, 4, 300}, rng, 0.0, 0.0);
    kg::NegativeSampler sampler(ds.train, kg::CorruptionScheme::kUniform);
    pos.assign(ds.train.triplets().begin(), ds.train.triplets().end());
    neg = sampler.pregenerate(pos, rng);
  }
};

ModelConfig cfg16() {
  ModelConfig cfg;
  cfg.dim = 16;
  return cfg;
}

class SemiringModelTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SemiringModelTest, LossFiniteAndBackwardRuns) {
  Fixture fx;
  Rng rng(1);
  auto model = models::make_sparse_model(GetParam(), 50, 4, cfg16(), rng);
  autograd::Variable loss = model->loss(fx.pos, fx.neg);
  EXPECT_TRUE(std::isfinite(loss.value().at(0, 0)));
  loss.backward();
  for (auto& p : model->params()) {
    EXPECT_TRUE(p.has_grad());
    EXPECT_TRUE(std::isfinite(p.grad().max_abs()));
  }
}

TEST_P(SemiringModelTest, TrainingReducesLoss) {
  Fixture fx;
  Rng rng(2);
  auto model = models::make_sparse_model(GetParam(), 50, 4, cfg16(), rng);
  nn::Sgd opt(model->params(), 0.05f);
  float first = 0.0f, last = 0.0f;
  for (int step = 0; step < 40; ++step) {
    opt.zero_grad();
    autograd::Variable loss = model->loss(fx.pos, fx.neg);
    if (step == 0) first = loss.value().at(0, 0);
    last = loss.value().at(0, 0);
    loss.backward();
    opt.step();
    model->post_step();
  }
  EXPECT_LT(last, first);
}

TEST_P(SemiringModelTest, ScoringIsDeterministic) {
  Fixture fx;
  Rng rng(3);
  auto model = models::make_sparse_model(GetParam(), 50, 4, cfg16(), rng);
  const std::span<const Triplet> batch(fx.pos.data(), 20);
  const auto a = model->score(batch);
  const auto b = model->score(batch);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

INSTANTIATE_TEST_SUITE_P(Extensions, SemiringModelTest,
                         ::testing::Values("DistMult", "ComplEx", "RotatE"));

TEST(SemiringModels, DistMultIsSymmetricInHeadTail) {
  // DistMult's trilinear score is symmetric under h↔t swap — a known
  // modelling property; verify our kernel honours it.
  Rng rng(4);
  auto model = models::make_sparse_model("DistMult", 20, 3, cfg16(), rng);
  std::vector<Triplet> fwd = {{2, 1, 7}};
  std::vector<Triplet> rev = {{7, 1, 2}};
  EXPECT_FLOAT_EQ(model->score(fwd)[0], model->score(rev)[0]);
}

TEST(SemiringModels, ComplExIsAsymmetric) {
  // ComplEx exists to break that symmetry; a random init should produce
  // different scores for swapped directions with overwhelming probability.
  Rng rng(5);
  auto model = models::make_sparse_model("ComplEx", 20, 3, cfg16(), rng);
  std::vector<Triplet> fwd = {{2, 1, 7}};
  std::vector<Triplet> rev = {{7, 1, 2}};
  EXPECT_NE(model->score(fwd)[0], model->score(rev)[0]);
}

TEST(SemiringModels, SimilarityModelsReportHigherIsBetter) {
  Rng rng(6);
  EXPECT_TRUE(models::make_sparse_model("DistMult", 10, 2, cfg16(), rng)
                  ->higher_is_better());
  EXPECT_TRUE(models::make_sparse_model("ComplEx", 10, 2, cfg16(), rng)
                  ->higher_is_better());
  EXPECT_FALSE(models::make_sparse_model("RotatE", 10, 2, cfg16(), rng)
                   ->higher_is_better());
  EXPECT_FALSE(models::make_sparse_model("TransE", 10, 2, cfg16(), rng)
                   ->higher_is_better());
}

TEST(SemiringModels, OddDimensionIsRoundedUpForComplexModels) {
  Rng rng(7);
  ModelConfig cfg;
  cfg.dim = 15;  // odd — complex models need pairs
  auto complex_model = models::make_sparse_model("ComplEx", 10, 2, cfg, rng);
  std::vector<Triplet> batch = {{0, 0, 1}};
  EXPECT_TRUE(std::isfinite(complex_model->score(batch)[0]));
  auto rotate_model = models::make_sparse_model("RotatE", 10, 2, cfg, rng);
  EXPECT_TRUE(std::isfinite(rotate_model->score(batch)[0]));
}

TEST(SemiringModels, RotateScoreIsNonNegative) {
  Rng rng(8);
  auto model = models::make_sparse_model("RotatE", 15, 2, cfg16(), rng);
  std::vector<Triplet> batch;
  for (std::int64_t i = 0; i < 15; ++i)
    batch.push_back({i, i % 2, (i + 3) % 15});
  for (float s : model->score(batch)) EXPECT_GE(s, 0.0f);
}

}  // namespace
}  // namespace sptx
