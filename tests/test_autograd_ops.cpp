// Finite-difference gradient checks for every differentiable op.
#include <gtest/gtest.h>

#include "gradcheck.hpp"
#include "src/autograd/ops.hpp"
#include "src/common/rng.hpp"
#include "src/sparse/incidence.hpp"

namespace sptx {
namespace {

using autograd::Variable;
using testing::expect_gradient_matches;

Matrix random_dense(index_t rows, index_t cols, std::uint64_t seed,
                    float lo = -1.0f, float hi = 1.0f) {
  Rng rng(seed);
  Matrix m(rows, cols);
  m.fill_uniform(rng, lo, hi);
  return m;
}

TEST(OpGrad, Add) {
  Matrix other = random_dense(3, 4, 1);
  expect_gradient_matches(random_dense(3, 4, 2), [&](Variable& p) {
    Variable c = Variable::leaf(other, false);
    return autograd::sum_all(autograd::add(p, c));
  });
}

TEST(OpGrad, SubBothSides) {
  Matrix other = random_dense(3, 4, 3);
  expect_gradient_matches(random_dense(3, 4, 4), [&](Variable& p) {
    Variable c = Variable::leaf(other, false);
    // p appears on both sides: sub(p, c) + sub(c, p) should cancel to
    // constant... use sub(p, c) only plus p again via scale for coverage.
    return autograd::sum_all(
        autograd::add(autograd::sub(p, c), autograd::scale(p, 0.5f)));
  });
}

TEST(OpGrad, MulElementwise) {
  Matrix other = random_dense(2, 5, 5);
  expect_gradient_matches(random_dense(2, 5, 6), [&](Variable& p) {
    Variable c = Variable::leaf(other, false);
    return autograd::sum_all(autograd::mul(p, c));
  });
}

TEST(OpGrad, MulWithSelf) {
  // d(x²)/dx = 2x — both parents are the same node.
  expect_gradient_matches(random_dense(2, 3, 7), [&](Variable& p) {
    return autograd::sum_all(autograd::mul(p, p));
  });
}

TEST(OpGrad, RowL2) {
  // Keep values away from 0 so the norm is smooth.
  expect_gradient_matches(random_dense(4, 6, 8, 0.5f, 1.5f),
                          [&](Variable& p) {
                            return autograd::sum_all(autograd::row_l2(p));
                          });
}

TEST(OpGrad, RowL1) {
  // Away from the |x| kink at 0.
  expect_gradient_matches(random_dense(4, 6, 9, 0.2f, 1.0f),
                          [&](Variable& p) {
                            return autograd::sum_all(autograd::row_l1(p));
                          });
}

TEST(OpGrad, RowSquaredL2) {
  expect_gradient_matches(random_dense(3, 5, 10), [&](Variable& p) {
    return autograd::sum_all(autograd::row_squared_l2(p));
  });
}

TEST(OpGrad, TorusSquaredL2) {
  // Stay away from the wraparound kinks at frac = 0 and frac = 1/2.
  expect_gradient_matches(random_dense(3, 4, 11, 0.1f, 0.4f),
                          [&](Variable& p) {
                            return autograd::sum_all(
                                autograd::row_squared_l2_torus(p));
                          });
  expect_gradient_matches(random_dense(3, 4, 12, 0.6f, 0.9f),
                          [&](Variable& p) {
                            return autograd::sum_all(
                                autograd::row_squared_l2_torus(p));
                          });
}

TEST(OpGrad, TorusL1) {
  expect_gradient_matches(random_dense(2, 5, 13, 0.1f, 0.4f),
                          [&](Variable& p) {
                            return autograd::sum_all(
                                autograd::row_l1_torus(p));
                          });
}

TEST(OpGrad, RowDotBothParents) {
  Matrix other = random_dense(4, 3, 14);
  expect_gradient_matches(random_dense(4, 3, 15), [&](Variable& p) {
    Variable c = Variable::leaf(other, false);
    Variable both = autograd::add(autograd::row_dot(p, c),
                                  autograd::row_dot(c, p));
    return autograd::sum_all(both);
  });
}

TEST(OpGrad, ScaleRowsColumnParent) {
  Matrix x = random_dense(4, 3, 16);
  expect_gradient_matches(random_dense(4, 1, 17), [&](Variable& p) {
    Variable c = Variable::leaf(x, false);
    return autograd::sum_all(autograd::scale_rows(p, c));
  });
}

TEST(OpGrad, ScaleRowsMatrixParent) {
  Matrix col = random_dense(4, 1, 18);
  expect_gradient_matches(random_dense(4, 3, 19), [&](Variable& p) {
    Variable c = Variable::leaf(col, false);
    return autograd::sum_all(autograd::scale_rows(c, p));
  });
}

TEST(OpGrad, SpmmDenseOperand) {
  std::vector<Triplet> batch = {{0, 1, 3}, {2, 0, 1}, {4, 1, 0}};
  auto a = std::make_shared<Csr>(build_hrt_incidence_csr(batch, 5, 2));
  expect_gradient_matches(random_dense(7, 4, 20), [&](Variable& p) {
    return autograd::sum_all(autograd::spmm(a, p));
  });
}

TEST(OpGrad, SpmmWithDownstreamNorm) {
  // The full SpTransE forward shape: spmm → row_l2 → sum.
  std::vector<Triplet> batch = {{0, 0, 1}, {2, 1, 3}};
  auto a = std::make_shared<Csr>(build_hrt_incidence_csr(batch, 4, 2));
  expect_gradient_matches(
      random_dense(6, 5, 21, 0.3f, 1.0f), [&](Variable& p) {
        return autograd::sum_all(autograd::row_l2(autograd::spmm(a, p)));
      });
}

TEST(OpGrad, Gather) {
  auto idx = std::make_shared<std::vector<index_t>>(
      std::vector<index_t>{0, 2, 2, 1});  // duplicate index: grads must sum
  expect_gradient_matches(random_dense(3, 4, 22), [&](Variable& p) {
    return autograd::sum_all(autograd::gather(p, idx));
  });
}

TEST(OpGrad, RelationProjectBothParents) {
  const index_t r = 2, dr = 3, de = 4, m = 5;
  auto rel = std::make_shared<std::vector<index_t>>(
      std::vector<index_t>{0, 1, 0, 1, 1});
  Matrix x = random_dense(m, de, 23);
  expect_gradient_matches(random_dense(r * dr, de, 24), [&](Variable& p) {
    Variable c = Variable::leaf(x, false);
    return autograd::sum_all(autograd::relation_project(p, c, rel, dr));
  });
  Matrix proj = random_dense(r * dr, de, 25);
  expect_gradient_matches(random_dense(m, de, 26), [&](Variable& p) {
    Variable c = Variable::leaf(proj, false);
    return autograd::sum_all(autograd::relation_project(c, p, rel, dr));
  });
}

TEST(OpGrad, MarginRankingLoss) {
  // Positive and negative scores chosen so some pairs are active and some
  // are clamped at zero (and no pair sits exactly on the hinge kink).
  Matrix neg{{0.9f}, {3.0f}, {0.2f}, {2.0f}};
  expect_gradient_matches(
      Matrix{{1.0f}, {1.0f}, {1.0f}, {1.0f}},
      [&](Variable& p) {
        Variable n = Variable::leaf(neg, false);
        return autograd::margin_ranking_loss(p, n, 0.5f);
      });
}

TEST(OpGrad, DistMultScore) {
  auto batch = std::make_shared<std::vector<Triplet>>(
      std::vector<Triplet>{{0, 0, 2}, {1, 1, 0}, {2, 0, 2}});
  expect_gradient_matches(random_dense(5, 4, 27), [&](Variable& p) {
    return autograd::sum_all(autograd::distmult_score(p, batch, 3));
  });
}

TEST(OpGrad, ComplExScore) {
  auto batch = std::make_shared<std::vector<Triplet>>(
      std::vector<Triplet>{{0, 1, 2}, {2, 0, 1}});
  expect_gradient_matches(random_dense(5, 6, 28), [&](Variable& p) {
    return autograd::sum_all(autograd::complex_score(p, batch, 3));
  });
}

TEST(OpGrad, MarginLossEndToEndTransEShape) {
  // Full sparse TransE loss: two SpMMs through the same embedding leaf.
  std::vector<Triplet> pos = {{0, 0, 1}, {2, 1, 3}};
  std::vector<Triplet> neg = {{0, 0, 3}, {1, 1, 3}};
  auto ap = std::make_shared<Csr>(build_hrt_incidence_csr(pos, 4, 2));
  auto an = std::make_shared<Csr>(build_hrt_incidence_csr(neg, 4, 2));
  expect_gradient_matches(
      random_dense(6, 4, 29, 0.3f, 1.0f), [&](Variable& p) {
        Variable dp = autograd::row_l2(autograd::spmm(ap, p));
        Variable dn = autograd::row_l2(autograd::spmm(an, p));
        return autograd::margin_ranking_loss(dp, dn, 0.5f);
      },
      1e-3f, 5e-2f);
}

}  // namespace
}  // namespace sptx
