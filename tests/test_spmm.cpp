// Tests for the SpMM kernels, including the Appendix G backward property.
#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/sparse/incidence.hpp"
#include "src/sparse/spmm.hpp"

namespace sptx {
namespace {

Coo random_coo(index_t rows, index_t cols, index_t nnz, Rng& rng) {
  Coo coo;
  coo.rows = rows;
  coo.cols = cols;
  for (index_t k = 0; k < nnz; ++k) {
    coo.push(static_cast<index_t>(
                 rng.next_below(static_cast<std::uint64_t>(rows))),
             static_cast<index_t>(
                 rng.next_below(static_cast<std::uint64_t>(cols))),
             rng.uniform(-1, 1));
  }
  return coo;
}

Matrix random_dense(index_t rows, index_t cols, Rng& rng) {
  Matrix m(rows, cols);
  m.fill_uniform(rng, -1, 1);
  return m;
}

// Reference: dense(A) · X with the tested GEMM.
Matrix reference_spmm(const Csr& a, const Matrix& x) {
  return matmul(to_dense(a), x);
}

struct SpmmCase {
  int seed;
  index_t rows, cols, nnz, dim;
  SpmmKernel kernel;
};

class SpmmKernelTest : public ::testing::TestWithParam<SpmmCase> {};

TEST_P(SpmmKernelTest, MatchesDenseReference) {
  const SpmmCase c = GetParam();
  Rng rng(static_cast<std::uint64_t>(c.seed));
  const Csr a = coo_to_csr(random_coo(c.rows, c.cols, c.nnz, rng));
  const Matrix x = random_dense(c.cols, c.dim, rng);
  const Matrix got = spmm_csr(a, x, c.kernel);
  EXPECT_LT(max_abs_diff(got, reference_spmm(a, x)), 1e-4f);
}

TEST_P(SpmmKernelTest, CooAgreesWithCsr) {
  const SpmmCase c = GetParam();
  Rng rng(static_cast<std::uint64_t>(c.seed + 1000));
  const Coo coo = random_coo(c.rows, c.cols, c.nnz, rng);
  const Csr csr = coo_to_csr(coo);
  const Matrix x = random_dense(c.cols, c.dim, rng);
  EXPECT_LT(max_abs_diff(spmm_coo(coo, x), spmm_csr(csr, x, c.kernel)),
            1e-4f);
}

std::vector<SpmmCase> spmm_cases() {
  std::vector<SpmmCase> cases;
  int seed = 0;
  for (SpmmKernel k :
       {SpmmKernel::kNaive, SpmmKernel::kUnrolled, SpmmKernel::kTiled,
        SpmmKernel::kParallel, SpmmKernel::kSimd, SpmmKernel::kTiledParallel,
        SpmmKernel::kAuto}) {
    cases.push_back({seed++, 1, 1, 1, 1, k});        // degenerate
    cases.push_back({seed++, 16, 8, 40, 5, k});      // odd dim (tail loop)
    cases.push_back({seed++, 16, 8, 40, 8, k});      // multiple of unroll
    cases.push_back({seed++, 64, 32, 200, 33, k});   // tail + bigger
    cases.push_back({seed++, 7, 100, 300, 16, k});   // wide, duplicates
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Kernels, SpmmKernelTest,
                         ::testing::ValuesIn(spmm_cases()));

TEST(Spmm, ShapeMismatchThrows) {
  Rng rng(9);
  const Csr a = coo_to_csr(random_coo(4, 6, 8, rng));
  const Matrix wrong = random_dense(5, 3, rng);
  EXPECT_THROW(spmm_csr(a, wrong), Error);
}

TEST(Spmm, IntoVariantWritesCallerBuffer) {
  Rng rng(10);
  const Csr a = coo_to_csr(random_coo(5, 7, 12, rng));
  const Matrix x = random_dense(7, 4, rng);
  Matrix out(5, 4);
  out.fill(123.0f);  // stale garbage must be overwritten
  spmm_csr_into(a, x, out);
  EXPECT_LT(max_abs_diff(out, reference_spmm(a, x)), 1e-4f);
}

// ---- Appendix G: dX = Aᵀ·g is itself an SpMM --------------------------

class SpmmBackwardTest : public ::testing::TestWithParam<int> {};

TEST_P(SpmmBackwardTest, ScatterAccumulateEqualsExplicitTranspose) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const Csr a = coo_to_csr(random_coo(20, 15, 60, rng));
  const Matrix g = random_dense(20, 9, rng);
  Matrix dx(15, 9);
  spmm_csr_transposed_accumulate(a, g, dx);
  const Matrix expected = spmm_csr_transposed_explicit(a, g);
  EXPECT_LT(max_abs_diff(dx, expected), 1e-4f);
}

TEST_P(SpmmBackwardTest, TransposedEqualsDenseTransposeProduct) {
  Rng rng(static_cast<std::uint64_t>(GetParam() + 50));
  const Csr a = coo_to_csr(random_coo(12, 10, 30, rng));
  const Matrix g = random_dense(12, 6, rng);
  Matrix dx(10, 6);
  spmm_csr_transposed_accumulate(a, g, dx);
  EXPECT_LT(max_abs_diff(dx, matmul_tn(to_dense(a), g)), 1e-4f);
}

TEST_P(SpmmBackwardTest, AccumulateAddsOntoExisting) {
  Rng rng(static_cast<std::uint64_t>(GetParam() + 99));
  const Csr a = coo_to_csr(random_coo(8, 6, 16, rng));
  const Matrix g = random_dense(8, 3, rng);
  Matrix dx(6, 3);
  dx.fill(1.0f);
  spmm_csr_transposed_accumulate(a, g, dx);
  Matrix expected = spmm_csr_transposed_explicit(a, g);
  for (index_t i = 0; i < expected.size(); ++i)
    expected.data()[i] += 1.0f;
  EXPECT_LT(max_abs_diff(dx, expected), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpmmBackwardTest, ::testing::Range(0, 6));

// ---- The §4.2 semantics: incidence SpMM computes the batch expression ----

TEST(Spmm, HtIncidenceComputesHeadMinusTail) {
  Rng rng(77);
  const index_t n = 12, d = 6;
  const Matrix e = random_dense(n, d, rng);
  std::vector<Triplet> batch = {{0, 0, 5}, {3, 0, 3}, {11, 0, 0}};
  const Csr a = build_ht_incidence_csr(batch, n);
  const Matrix ht = spmm_csr(a, e);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    for (index_t j = 0; j < d; ++j) {
      EXPECT_NEAR(ht.at(static_cast<index_t>(i), j),
                  e.at(batch[i].head, j) - e.at(batch[i].tail, j), 1e-5f);
    }
  }
}

TEST(Spmm, HrtIncidenceComputesHeadPlusRelMinusTail) {
  Rng rng(78);
  const index_t n = 10, r = 4, d = 5;
  const Matrix e = random_dense(n + r, d, rng);
  std::vector<Triplet> batch = {{2, 3, 7}, {9, 0, 9}, {0, 1, 1}};
  const Csr a = build_hrt_incidence_csr(batch, n, r);
  const Matrix hrt = spmm_csr(a, e);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    for (index_t j = 0; j < d; ++j) {
      const float expected = e.at(batch[i].head, j) +
                             e.at(n + batch[i].relation, j) -
                             e.at(batch[i].tail, j);
      EXPECT_NEAR(hrt.at(static_cast<index_t>(i), j), expected, 1e-5f);
    }
  }
}

}  // namespace
}  // namespace sptx
