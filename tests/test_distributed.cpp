// Tests for the data-parallel trainer and the DDP scaling model.
#include <gtest/gtest.h>

#include <cmath>
#include <algorithm>

#include "src/distributed/ddp.hpp"
#include "src/kg/synthetic.hpp"
#include "src/train/trainer.hpp"

namespace sptx {
namespace {

kg::Dataset ddp_dataset() {
  Rng rng(61);
  return kg::generate({"ddp", 60, 4, 512}, rng, 0.0, 0.0);
}

models::ModelConfig cfg8() {
  models::ModelConfig cfg;
  cfg.dim = 8;
  return cfg;
}

TEST(Ddp, SingleWorkerMatchesSequentialTrainer) {
  const kg::Dataset ds = ddp_dataset();
  distributed::DdpConfig dc;
  dc.workers = 1;
  dc.epochs = 3;
  dc.batch_size = 128;
  dc.lr = 0.02f;
  dc.seed = 7;
  const auto ddp = distributed::train_ddp(
      [&](Rng& rng) {
        return models::make_sparse_model("TransE", 60, 4, cfg8(), rng);
      },
      ds.train, dc);

  Rng rng(7);
  auto model = models::make_sparse_model("TransE", 60, 4, cfg8(), rng);
  train::TrainConfig tc;
  tc.epochs = 3;
  tc.batch_size = 128;
  tc.lr = 0.02f;
  tc.seed = 7 + 1;  // train_ddp seeds its data rng with seed+1
  const auto seq = train::train(*model, ds.train, tc);

  ASSERT_EQ(ddp.epoch_loss.size(), seq.epoch_loss.size());
  for (std::size_t i = 0; i < ddp.epoch_loss.size(); ++i)
    EXPECT_NEAR(ddp.epoch_loss[i], seq.epoch_loss[i], 1e-4f);
}

TEST(Ddp, WorkersConvergeLikeSequential) {
  // Gradient averaging over shards ≈ full-batch gradient: 4 workers must
  // reduce loss comparably to 1 worker over the same epochs.
  const kg::Dataset ds = ddp_dataset();
  auto run = [&](int workers) {
    distributed::DdpConfig dc;
    dc.workers = workers;
    dc.epochs = 5;
    dc.batch_size = 256;
    dc.lr = 0.05f;
    dc.seed = 9;
    return distributed::train_ddp(
        [&](Rng& rng) {
          return models::make_sparse_model("TransE", 60, 4, cfg8(), rng);
        },
        ds.train, dc);
  };
  const auto one = run(1);
  const auto four = run(4);
  EXPECT_LT(one.epoch_loss.back(), one.epoch_loss.front());
  EXPECT_LT(four.epoch_loss.back(), four.epoch_loss.front());
  // With shard_size unset the decomposition derives from the worker count
  // (1 shard vs 4 per batch), so results differ only by float reassociation
  // across shard boundaries — same ballpark. Fixing shard_size makes them
  // bit-identical (test_ddp_streaming covers that).
  EXPECT_NEAR(four.epoch_loss.back(), one.epoch_loss.back(),
              0.3f * std::max(1e-3f, one.epoch_loss.front()));
}

TEST(Ddp, ReplicasStayInSync) {
  // After DDP training with identical averaged updates, a fresh run with
  // the same seeds must be deterministic.
  const kg::Dataset ds = ddp_dataset();
  distributed::DdpConfig dc;
  dc.workers = 3;
  dc.epochs = 2;
  dc.batch_size = 128;
  dc.seed = 11;
  auto make = [&](Rng& rng) {
    return models::make_sparse_model("TransE", 60, 4, cfg8(), rng);
  };
  const auto a = distributed::train_ddp(make, ds.train, dc);
  const auto b = distributed::train_ddp(make, ds.train, dc);
  ASSERT_EQ(a.epoch_loss.size(), b.epoch_loss.size());
  for (std::size_t i = 0; i < a.epoch_loss.size(); ++i)
    EXPECT_FLOAT_EQ(a.epoch_loss[i], b.epoch_loss[i]);
}

TEST(ScalingModel, ComputeTermShrinksWithWorkers) {
  distributed::ScalingModel sm;
  sm.single_worker_epoch_s = 10.0;
  sm.gradient_bytes = 100 * 1024 * 1024;
  const double t4 = sm.predict_seconds(4, 10);
  const double t16 = sm.predict_seconds(16, 10);
  const double t64 = sm.predict_seconds(64, 10);
  // Table 9 shape: monotone decreasing through 64 workers.
  EXPECT_GT(t4, t16);
  EXPECT_GT(t16, t64);
}

TEST(ScalingModel, SublinearSpeedup) {
  distributed::ScalingModel sm;
  sm.single_worker_epoch_s = 10.0;
  sm.gradient_bytes = 100 * 1024 * 1024;
  const double t1 = sm.predict_seconds(1, 10);
  const double t8 = sm.predict_seconds(8, 10);
  const double speedup = t1 / t8;
  EXPECT_GT(speedup, 1.0);
  EXPECT_LT(speedup, 8.0);  // communication + efficiency decay
}

TEST(ScalingModel, CommunicationDominatesEventually) {
  // With a huge gradient and thin pipe, adding workers stops helping.
  distributed::ScalingModel sm;
  sm.single_worker_epoch_s = 1.0;
  sm.gradient_bytes = 10LL * 1024 * 1024 * 1024;
  sm.bandwidth_gbps = 1.0;
  const double t8 = sm.predict_seconds(8, 1);
  const double t64 = sm.predict_seconds(64, 1);
  EXPECT_GT(t64, t8 * 0.9);  // no longer scaling
}

TEST(ScalingModel, InvalidWorkerCountThrows) {
  distributed::ScalingModel sm;
  EXPECT_THROW(sm.predict_seconds(0, 1), Error);
}

}  // namespace
}  // namespace sptx
