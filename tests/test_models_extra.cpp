// Tests for the extended translational models (TransD/A/C/M).
#include <gtest/gtest.h>

#include <cmath>

#include "src/kg/negative_sampler.hpp"
#include "src/kg/synthetic.hpp"
#include "src/models/model.hpp"
#include "src/models/sp_extra.hpp"
#include "src/nn/optim.hpp"

namespace sptx {
namespace {

using models::ModelConfig;

struct Fixture {
  std::vector<Triplet> pos;
  std::vector<Triplet> neg;
  Fixture() {
    Rng rng(31);
    kg::Dataset ds = kg::generate({"extra", 50, 5, 300}, rng, 0.0, 0.0);
    kg::NegativeSampler sampler(ds.train, kg::CorruptionScheme::kUniform);
    pos.assign(ds.train.triplets().begin(), ds.train.triplets().end());
    neg = sampler.pregenerate(pos, rng);
  }
};

ModelConfig cfg16() {
  ModelConfig cfg;
  cfg.dim = 16;
  return cfg;
}

class ExtraModelTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ExtraModelTest, LossFiniteAndBackwardRuns) {
  Fixture fx;
  Rng rng(1);
  auto model = models::make_sparse_model(GetParam(), 50, 5, cfg16(), rng);
  autograd::Variable loss = model->loss(fx.pos, fx.neg);
  EXPECT_TRUE(std::isfinite(loss.value().at(0, 0)));
  loss.backward();
  for (auto& p : model->params()) {
    EXPECT_TRUE(p.has_grad());
    EXPECT_TRUE(std::isfinite(p.grad().max_abs()));
  }
}

TEST_P(ExtraModelTest, TrainingReducesLoss) {
  Fixture fx;
  Rng rng(2);
  auto model = models::make_sparse_model(GetParam(), 50, 5, cfg16(), rng);
  nn::Sgd opt(model->params(), 0.05f);
  float first = 0.0f, last = 0.0f;
  for (int step = 0; step < 40; ++step) {
    opt.zero_grad();
    autograd::Variable loss = model->loss(fx.pos, fx.neg);
    if (step == 0) first = loss.value().at(0, 0);
    last = loss.value().at(0, 0);
    loss.backward();
    opt.step();
    model->post_step();
  }
  EXPECT_LT(last, first) << GetParam();
}

TEST_P(ExtraModelTest, FastScoreIsDeterministic) {
  Fixture fx;
  Rng rng(3);
  auto model = models::make_sparse_model(GetParam(), 50, 5, cfg16(), rng);
  const std::span<const Triplet> batch(fx.pos.data(), 24);
  const auto a = model->score(batch);
  const auto b = model->score(batch);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

INSTANTIATE_TEST_SUITE_P(Extended, ExtraModelTest,
                         ::testing::Values("TransD", "TransA", "TransC",
                                           "TransM"));

TEST(ExtraModels, TransDScoreMatchesUnrearrangedForm) {
  // Sanity for the algebraic rearrangement: the fast scorer (rearranged)
  // must equal the textbook h⊥ + r − t⊥ evaluated by hand.
  Rng rng(4);
  auto model = models::make_sparse_model("TransD", 20, 3, cfg16(), rng);
  std::vector<Triplet> batch = {{1, 0, 5}, {7, 2, 7}, {0, 1, 19}};
  const auto fast = model->score(batch);
  // Recompute through the autograd distance (unrearranged verification is
  // implied by the gradient checks; here we check the forward values).
  auto* transd = dynamic_cast<models::SpTransD*>(model.get());
  ASSERT_NE(transd, nullptr);
  const Matrix dist = transd->distance(batch).value();
  for (std::size_t i = 0; i < batch.size(); ++i)
    EXPECT_NEAR(fast[i], dist.at(static_cast<index_t>(i), 0),
                1e-4f * (1.0f + fast[i]));
}

TEST(ExtraModels, TransDSparseMatchesDenseBaseline) {
  Rng rs(5), rd(5);
  ModelConfig cfg = cfg16();
  auto sparse = models::make_sparse_model("TransD", 30, 4, cfg, rs);
  auto dense = models::make_dense_model("TransD", 30, 4, cfg, rd);
  Rng rng(6);
  kg::Dataset ds = kg::generate({"d", 30, 4, 200}, rng, 0.0, 0.0);
  kg::NegativeSampler sampler(ds.train, kg::CorruptionScheme::kUniform);
  std::vector<Triplet> pos(ds.train.triplets().begin(),
                           ds.train.triplets().end());
  std::vector<Triplet> neg = sampler.pregenerate(pos, rng);

  const auto ss = sparse->score(pos);
  const auto sd = dense->score(pos);
  for (std::size_t i = 0; i < ss.size(); ++i)
    EXPECT_NEAR(ss[i], sd[i], 1e-4f * (1.0f + std::fabs(sd[i])));

  const float ls = sparse->loss(pos, neg).value().at(0, 0);
  const float ld = dense->loss(pos, neg).value().at(0, 0);
  EXPECT_NEAR(ls, ld, 1e-4f * (1.0f + std::fabs(ld)));
}

TEST(ExtraModels, TransAMetricStaysNonNegative) {
  Fixture fx;
  Rng rng(7);
  auto model = models::make_sparse_model("TransA", 50, 5, cfg16(), rng);
  nn::Sgd opt(model->params(), 0.5f);  // aggressive: would push w negative
  for (int step = 0; step < 20; ++step) {
    opt.zero_grad();
    model->loss(fx.pos, fx.neg).backward();
    opt.step();
    model->post_step();
  }
  const Matrix& w = model->params()[1].value();
  for (index_t i = 0; i < w.size(); ++i) EXPECT_GT(w.data()[i], 0.0f);
  // Scores under a nonnegative diagonal metric are nonnegative.
  for (float s : model->score(fx.pos)) EXPECT_GE(s, 0.0f);
}

TEST(ExtraModels, TransCIsSquaredTransE) {
  // With the same stacked table, TransC's score is TransE's L2 score
  // squared. Same seed → same init, so compare directly.
  Rng r1(8), r2(8);
  auto transe = models::make_sparse_model("TransE", 20, 3, cfg16(), r1);
  auto transc = models::make_sparse_model("TransC", 20, 3, cfg16(), r2);
  std::vector<Triplet> batch = {{0, 0, 1}, {5, 2, 9}, {19, 1, 3}};
  const auto se = transe->score(batch);
  const auto sc = transc->score(batch);
  for (std::size_t i = 0; i < batch.size(); ++i)
    EXPECT_NEAR(sc[i], se[i] * se[i], 1e-3f * (1.0f + sc[i]));
}

TEST(ExtraModels, TransMWeightsModulateScore) {
  Rng rng(9);
  auto model = models::make_sparse_model("TransM", 20, 2, cfg16(), rng);
  std::vector<Triplet> batch = {{0, 0, 1}};
  const float base = model->score(batch)[0];
  // Doubling the relation weight doubles the score.
  model->params()[1].mutable_value().at(0, 0) = 2.0f;
  EXPECT_NEAR(model->score(batch)[0], 2.0f * base, 1e-4f * (1.0f + base));
}

TEST(ExtraModels, GradCheckTransD) {
  // End-to-end finite difference on the entity table through the TransD
  // loss (the trickiest rearrangement).
  Fixture fx;
  Rng rng(10);
  ModelConfig cfg;
  cfg.dim = 6;
  auto model = models::make_sparse_model("TransD", 50, 5, cfg, rng);
  const std::span<const Triplet> pos(fx.pos.data(), 8);
  const std::span<const Triplet> neg(fx.neg.data(), 8);

  for (auto& p : model->params()) p.zero_grad();
  autograd::Variable loss = model->loss(pos, neg);
  loss.backward();
  auto params = model->params();
  Matrix analytic = params[0].grad();

  const float eps = 1e-3f;
  Matrix& w = params[0].mutable_value();
  int checked = 0;
  for (index_t flat = 0; flat < w.size() && checked < 24;
       flat += w.size() / 24, ++checked) {
    const float saved = w.data()[flat];
    w.data()[flat] = saved + eps;
    const float lp = model->loss(pos, neg).value().at(0, 0);
    w.data()[flat] = saved - eps;
    const float lm = model->loss(pos, neg).value().at(0, 0);
    w.data()[flat] = saved;
    const float numeric = (lp - lm) / (2.0f * eps);
    EXPECT_NEAR(analytic.data()[flat], numeric,
                5e-2f * (1.0f + std::fabs(numeric)))
        << "flat index " << flat;
  }
}

}  // namespace
}  // namespace sptx
