// Tests for embeddings, optimizers, and LR schedulers.
#include <gtest/gtest.h>

#include <cmath>

#include <cstdio>

#include "src/autograd/ops.hpp"
#include "src/nn/embedding.hpp"
#include "src/nn/optim.hpp"

namespace sptx {
namespace {

using autograd::Variable;

TEST(Embedding, XavierInitWithinBound) {
  Rng rng(1);
  nn::EmbeddingTable table(20, 16, rng);
  const float bound = 6.0f / std::sqrt(16.0f);
  EXPECT_LE(table.weights().max_abs(), bound);
  EXPECT_TRUE(table.var().requires_grad());
}

TEST(Embedding, NormalizeRowsMakesUnitRows) {
  Rng rng(2);
  nn::EmbeddingTable table(10, 8, rng);
  table.normalize_rows();
  for (index_t i = 0; i < 10; ++i) {
    float sq = 0.0f;
    for (index_t j = 0; j < 8; ++j)
      sq += table.weights().at(i, j) * table.weights().at(i, j);
    EXPECT_NEAR(sq, 1.0f, 1e-4f);
  }
}

TEST(Embedding, ExplicitInitIsUsedVerbatim) {
  Matrix init{{1, 2}, {3, 4}};
  nn::EmbeddingTable table(init);
  EXPECT_FLOAT_EQ(table.weights().at(1, 0), 3.0f);
}

TEST(Sgd, StepMovesAgainstGradient) {
  Variable w = Variable::leaf(Matrix{{1.0f, 2.0f}}, true);
  nn::Sgd opt({w}, 0.1f);
  autograd::sum_all(w).backward();  // grad = 1
  opt.step();
  EXPECT_FLOAT_EQ(w.value().at(0, 0), 0.9f);
  EXPECT_FLOAT_EQ(w.value().at(0, 1), 1.9f);
}

TEST(Sgd, ZeroGradClearsBetweenSteps) {
  Variable w = Variable::leaf(Matrix{{1.0f}}, true);
  nn::Sgd opt({w}, 0.1f);
  autograd::sum_all(w).backward();
  opt.step();
  opt.zero_grad();
  autograd::sum_all(w).backward();
  opt.step();
  // Two steps of −0.1 each, not −0.1 then −0.2.
  EXPECT_NEAR(w.value().at(0, 0), 0.8f, 1e-6f);
}

TEST(Sgd, MomentumAcceleratesConstantGradient) {
  Variable w1 = Variable::leaf(Matrix{{0.0f}}, true);
  Variable w2 = Variable::leaf(Matrix{{0.0f}}, true);
  nn::Sgd plain({w1}, 0.1f);
  nn::Sgd momentum({w2}, 0.1f, 0.9f);
  for (int i = 0; i < 5; ++i) {
    plain.zero_grad();
    momentum.zero_grad();
    autograd::sum_all(w1).backward();
    autograd::sum_all(w2).backward();
    plain.step();
    momentum.step();
  }
  // Momentum walks farther under a constant gradient.
  EXPECT_LT(w2.value().at(0, 0), w1.value().at(0, 0));
}

TEST(Adagrad, PerCoordinateScaling) {
  // Coordinate 0 gets a 10× larger gradient; Adagrad shrinks its effective
  // step so after several iterations the updates are closer than raw SGD's.
  Variable w = Variable::leaf(Matrix{{0.0f, 0.0f}}, true);
  nn::Adagrad opt({w}, 0.1f);
  for (int i = 0; i < 10; ++i) {
    opt.zero_grad();
    w.grad().at(0, 0) = 10.0f;
    w.grad().at(0, 1) = 1.0f;
    opt.step();
  }
  const float move0 = -w.value().at(0, 0);
  const float move1 = -w.value().at(0, 1);
  EXPECT_GT(move0, 0.0f);
  EXPECT_GT(move1, 0.0f);
  // Raw SGD ratio would be 10×; Adagrad compresses it to ~1×.
  EXPECT_LT(move0 / move1, 1.5f);
}

TEST(Adagrad, SkipsParamsWithoutGrad) {
  Variable w = Variable::leaf(Matrix{{5.0f}}, true);
  nn::Adagrad opt({w}, 0.1f);
  opt.step();  // no backward ran — must not touch or crash
  EXPECT_FLOAT_EQ(w.value().at(0, 0), 5.0f);
}

TEST(StepLr, HalvesEveryPeriod) {
  Variable w = Variable::leaf(Matrix{{0.0f}}, true);
  nn::Sgd opt({w}, 1.0f);
  nn::StepLr sched(opt, 10, 0.5f);
  sched.on_epoch(0);
  EXPECT_FLOAT_EQ(opt.lr(), 1.0f);
  sched.on_epoch(10);
  EXPECT_FLOAT_EQ(opt.lr(), 0.5f);
  sched.on_epoch(25);
  EXPECT_FLOAT_EQ(opt.lr(), 0.25f);
}

TEST(CosineLr, AnnealsToMinimum) {
  Variable w = Variable::leaf(Matrix{{0.0f}}, true);
  nn::Sgd opt({w}, 1.0f);
  nn::CosineLr sched(opt, 11, 0.1f);
  sched.on_epoch(0);
  EXPECT_NEAR(opt.lr(), 1.0f, 1e-5f);
  sched.on_epoch(10);
  EXPECT_NEAR(opt.lr(), 0.1f, 1e-5f);
  sched.on_epoch(5);
  EXPECT_GT(opt.lr(), 0.1f);
  EXPECT_LT(opt.lr(), 1.0f);
}

TEST(StreamingEmbedding, CreateLoadStoreRoundTrip) {
  const std::string path = ::testing::TempDir() + "/sptx_stream_emb.bin";
  Rng rng(3);
  {
    auto emb = nn::StreamingEmbedding::create(path, 10, 4, rng);
    Matrix rows = emb.load_rows(2, 3);
    EXPECT_EQ(rows.rows(), 3);
    rows.fill(7.5f);
    emb.store_rows(2, rows);
    emb.sync();
  }
  {
    auto emb = nn::StreamingEmbedding::open(path, 10, 4);
    const Matrix rows = emb.load_rows(2, 3);
    for (index_t i = 0; i < rows.size(); ++i)
      EXPECT_FLOAT_EQ(rows.data()[i], 7.5f);
    // Untouched rows keep their init (nonzero with overwhelming odds).
    const Matrix other = emb.load_rows(0, 1);
    EXPECT_GT(other.max_abs(), 0.0f);
  }
  std::remove(path.c_str());
}

TEST(StreamingEmbedding, OutOfRangeThrows) {
  const std::string path = ::testing::TempDir() + "/sptx_stream_emb2.bin";
  Rng rng(4);
  auto emb = nn::StreamingEmbedding::create(path, 5, 2, rng);
  EXPECT_THROW(emb.load_rows(4, 3), Error);
  Matrix bad(1, 3);
  EXPECT_THROW(emb.store_rows(0, bad), Error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sptx
