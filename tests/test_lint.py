#!/usr/bin/env python3
"""Self-tests for tools/sptx_lint.py: every rule is exercised against a
minimal fixture tree twice — once clean (no diagnostics) and once seeded
with exactly the violation the rule exists to catch. Registered as the
`sptx_lint_selftest` ctest; a rule that silently stops firing fails here
even while the real tree stays green."""

import importlib.util
import os
import sys
import tempfile
import unittest

_TOOLS = os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir,
                      "tools", "sptx_lint.py")
_spec = importlib.util.spec_from_file_location("sptx_lint", _TOOLS)
sptx_lint = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(sptx_lint)


# A registry table + README pair that rule env-registry accepts; fixtures
# build on top of this minimal consistent core.
REGISTRY_CPP = """
#include <cstdlib>
static const ConfigSpec kRegistry[] = {
    {"SPTX_PLAN_CACHE", ConfigType::kFlag, "", "doc"},
    {"SPTX_FAULT_SPEC", ConfigType::kString, "", "doc"},
};
const char* read(const std::string& name) {
  return std::getenv(name.c_str());
}
"""

README_MD = """
# fixture
| knob | where |
| `SPTX_PLAN_CACHE` | trainer |
| `SPTX_FAULT_SPEC` | fault harness |
"""

COUNTERS_HPP = """
enum class Counter : int {
  kPlanCompiles = 0,
  kPlanCacheHits,
  kNumCounters,
};
inline constexpr const char* kCounterNames[] = {
    "plan_compiles",    // kPlanCompiles
    "plan_cache_hits",  // kPlanCacheHits
};
"""


class FixtureTree:
    """Context manager building a throwaway repo tree from {relpath: text}."""

    def __init__(self, files):
        self.files = dict(files)
        self.files.setdefault("src/common/runtime_config.cpp", REGISTRY_CPP)
        self.files.setdefault("src/profiling/counters.hpp", COUNTERS_HPP)
        self.files.setdefault("README.md", README_MD)

    def __enter__(self):
        self.tmp = tempfile.TemporaryDirectory()
        for rel, text in self.files.items():
            path = os.path.join(self.tmp.name, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(text)
        return self.tmp.name

    def __exit__(self, *exc):
        self.tmp.cleanup()


def lint(root, rule):
    return sptx_lint.Linter(root).run([rule])


class EnvGetenvRule(unittest.TestCase):
    def test_flags_getenv_outside_runtime_config(self):
        files = {"src/train/trainer.cpp":
                 'const char* v = std::getenv("SPTX_PLAN_CACHE");\n'}
        with FixtureTree(files) as root:
            found = lint(root, "env-getenv")
        self.assertEqual(len(found), 1)
        self.assertIn("env-getenv", found[0])
        self.assertIn("trainer.cpp", found[0])

    def test_runtime_config_itself_and_comments_are_exempt(self):
        files = {"src/train/trainer.cpp":
                 '// legacy: std::getenv("SPTX_PLAN_CACHE")\nint x = 0;\n'}
        with FixtureTree(files) as root:
            self.assertEqual(lint(root, "env-getenv"), [])


class EnvRegistryRule(unittest.TestCase):
    def test_flags_unregistered_literal(self):
        files = {"src/serve/session.cpp":
                 'auto v = cfg.flag_or("SPTX_TYPO_KNOB", false);\n'}
        with FixtureTree(files) as root:
            found = lint(root, "env-registry")
        self.assertEqual(len(found), 1)
        self.assertIn("SPTX_TYPO_KNOB", found[0])

    def test_flags_knob_missing_from_readme(self):
        registry = REGISTRY_CPP.replace(
            '{"SPTX_FAULT_SPEC"', '{"SPTX_UNDOCUMENTED"')
        files = {"src/common/runtime_config.cpp": registry}
        with FixtureTree(files) as root:
            found = lint(root, "env-registry")
        self.assertEqual(len(found), 1)
        self.assertIn("SPTX_UNDOCUMENTED", found[0])
        self.assertIn("README", found[0])

    def test_registered_and_documented_knob_is_clean(self):
        files = {"src/serve/session.cpp":
                 'auto v = cfg.flag_or("SPTX_PLAN_CACHE", false);\n'}
        with FixtureTree(files) as root:
            self.assertEqual(lint(root, "env-registry"), [])


class CounterNamesRule(unittest.TestCase):
    def test_flags_missing_name_entry(self):
        broken = COUNTERS_HPP.replace(
            '    "plan_cache_hits",  // kPlanCacheHits\n', "")
        files = {"src/profiling/counters.hpp": broken}
        with FixtureTree(files) as root:
            found = lint(root, "counter-names")
        self.assertTrue(found)
        self.assertIn("counter-names", found[0])

    def test_flags_misordered_tie_back(self):
        swapped = COUNTERS_HPP.replace(
            '"plan_compiles",    // kPlanCompiles',
            '"plan_compiles",    // kPlanCacheHits')
        files = {"src/profiling/counters.hpp": swapped}
        with FixtureTree(files) as root:
            found = lint(root, "counter-names")
        self.assertTrue(found)

    def test_aligned_table_is_clean(self):
        with FixtureTree({}) as root:
            self.assertEqual(lint(root, "counter-names"), [])


class CheckpointIoRule(unittest.TestCase):
    def test_flags_raw_ofstream_in_checkpoint_subsystem(self):
        files = {"src/models/checkpoint.cpp":
                 "std::ofstream os(path, std::ios::binary);\n"}
        with FixtureTree(files) as root:
            found = lint(root, "checkpoint-io")
        self.assertEqual(len(found), 1)
        self.assertIn("checkpoint-io", found[0])

    def test_flags_fopen_in_train(self):
        files = {"src/train/trainer.cpp":
                 'FILE* f = fopen(path.c_str(), "wb");\n'}
        with FixtureTree(files) as root:
            self.assertEqual(len(lint(root, "checkpoint-io")), 1)

    def test_atomic_writer_usage_and_other_dirs_are_clean(self):
        files = {
            "src/models/checkpoint.cpp":
                "AtomicFileWriter writer(path);\nwriter.stream() << x;\n",
            # dataset export is not a checkpoint subsystem
            "src/kg/dataset.cpp": "std::ofstream os(path);\n",
        }
        with FixtureTree(files) as root:
            self.assertEqual(lint(root, "checkpoint-io"), [])


class RngDisciplineRule(unittest.TestCase):
    def test_flags_rand_srand_and_random_device(self):
        files = {
            "src/kg/sampler.cpp": "int r = rand() % n;\n",
            "src/train/init.cpp": "srand(42);\n",
            "src/models/init.cpp": "std::random_device rd;\n",
        }
        with FixtureTree(files) as root:
            found = lint(root, "rng-discipline")
        self.assertEqual(len(found), 3)

    def test_seeded_rng_and_lookalikes_are_clean(self):
        files = {"src/kg/sampler.cpp":
                 "Rng rng(seed);\nauto v = rng.uniform();\n"
                 "int operand(int x);\nint y = operand(3);\n"}
        with FixtureTree(files) as root:
            self.assertEqual(lint(root, "rng-discipline"), [])


class RawThreadsRule(unittest.TestCase):
    def test_flags_raw_thread_outside_runtime(self):
        files = {"src/serve/foo.cpp":
                 "std::thread t([] { work(); });\nt.join();\n"}
        with FixtureTree(files) as root:
            found = lint(root, "raw-threads")
        self.assertEqual(len(found), 1)
        self.assertIn("raw-threads", found[0])
        self.assertIn("foo.cpp", found[0])

    def test_runtime_dir_and_ddp_fork_join_site_are_exempt(self):
        files = {
            "src/runtime/pool.cpp": "std::thread worker(loop);\n",
            "src/distributed/ddp.cpp": "std::thread w(run_shard);\n",
        }
        with FixtureTree(files) as root:
            self.assertEqual(lint(root, "raw-threads"), [])

    def test_this_thread_and_comments_are_clean(self):
        files = {"src/serve/bar.cpp":
                 "std::this_thread::sleep_for(d);\n"
                 "// a std::thread used to live here\n"
                 "runtime::Thread t(fn);\n"}
        with FixtureTree(files) as root:
            self.assertEqual(lint(root, "raw-threads"), [])


class ProcessControlRule(unittest.TestCase):
    def test_flags_fork_and_kill_outside_distributed(self):
        files = {
            "src/serve/spawn.cpp": "pid_t pid = fork();\n",
            "src/runtime/reaper.cpp": "::kill(pid, SIGTERM);\n"
                                      "waitpid(pid, &st, 0);\n",
        }
        with FixtureTree(files) as root:
            found = lint(root, "process-control")
        self.assertEqual(len(found), 3)
        self.assertIn("process-control", found[0])

    def test_distributed_dir_is_exempt(self):
        files = {"src/distributed/proc_ddp.cpp":
                 "pid_t pid = ::fork();\n"
                 "::execv(exe, argv);\n"
                 "::kill(pid, SIGKILL);\n"
                 "::waitpid(pid, &st, WNOHANG);\n"}
        with FixtureTree(files) as root:
            self.assertEqual(lint(root, "process-control"), [])

    def test_members_comments_and_lookalikes_are_clean(self):
        files = {"src/serve/bar.cpp":
                 "// the supervisor calls fork() for us\n"
                 "task.kill();\n"
                 "session.fork_stream(id);\n"
                 "int pitchfork(int x);\nint y = pitchfork(3);\n"}
        with FixtureTree(files) as root:
            self.assertEqual(lint(root, "process-control"), [])


class IncludeLayersRule(unittest.TestCase):
    def test_flags_upward_include(self):
        files = {"src/tensor/matrix.cpp":
                 '#include "src/models/model.hpp"\n'}
        with FixtureTree(files) as root:
            found = lint(root, "include-layers")
        self.assertEqual(len(found), 1)
        self.assertIn("include-layers", found[0])

    def test_downward_and_sideways_includes_are_clean(self):
        files = {
            "src/serve/session.cpp":
                '#include "src/models/model.hpp"\n'
                '#include "src/common/error.hpp"\n',
            # models <-> baseline share a layer: both directions fine
            "src/baseline/dense_models.hpp":
                '#include "src/models/model.hpp"\n',
            "src/models/factory.cpp":
                '#include "src/baseline/dense_models.hpp"\n',
        }
        with FixtureTree(files) as root:
            self.assertEqual(lint(root, "include-layers"), [])

    def test_flags_unknown_directory(self):
        files = {"src/newdir/thing.cpp": "int x;\n"}
        with FixtureTree(files) as root:
            found = lint(root, "include-layers")
        self.assertEqual(len(found), 1)
        self.assertIn("no layer assignment", found[0])


class RealTree(unittest.TestCase):
    def test_actual_repo_is_clean(self):
        root = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            os.pardir)
        self.assertEqual(sptx_lint.Linter(os.path.abspath(root)).run(None), [])


if __name__ == "__main__":
    sys.exit(unittest.main())
