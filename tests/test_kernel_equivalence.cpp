// Kernel-equivalence suite: every forward SpMM kernel (naive / unrolled /
// tiled / parallel / simd / tiled_parallel / auto) and both backward paths
// (direct scatter, cached-transpose gather) must agree within 1e-5 on
// randomized inputs — including empty rows, dims not divisible by the SIMD
// width, single-row matrices, and ±1-only incidence matrices that take the
// fused register paths. CMake registers this binary twice: once as-is and
// once with SPTX_NO_SIMD=1 so both sides of the runtime cpuid dispatch are
// covered on one machine.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "src/common/cpu_features.hpp"
#include "src/common/rng.hpp"
#include "src/sparse/incidence.hpp"
#include "src/sparse/spmm.hpp"

namespace sptx {
namespace {

constexpr float kTol = 1e-5f;

const std::vector<SpmmKernel>& all_kernels() {
  static const std::vector<SpmmKernel> kernels = {
      SpmmKernel::kNaive,    SpmmKernel::kUnrolled,
      SpmmKernel::kTiled,    SpmmKernel::kParallel,
      SpmmKernel::kSimd,     SpmmKernel::kTiledParallel,
      SpmmKernel::kAuto,
  };
  return kernels;
}

// Random CSR with controllable row occupancy: `fill` is the chance a row
// gets entries at all, so empty rows appear mid-matrix. `unit` restricts
// values to ±1 (the incidence property / fused kernel paths).
Csr random_csr(index_t rows, index_t cols, index_t max_row_nnz, double fill,
               bool unit, Rng& rng) {
  Csr a;
  a.rows = rows;
  a.cols = cols;
  a.row_ptr.resize(static_cast<std::size_t>(rows) + 1, 0);
  for (index_t i = 0; i < rows; ++i) {
    a.row_ptr[static_cast<std::size_t>(i)] =
        static_cast<index_t>(a.values.size());
    if (rng.next_float() < fill) {
      const index_t nnz =
          1 + static_cast<index_t>(rng.next_below(
                  static_cast<std::uint64_t>(max_row_nnz)));
      for (index_t k = 0; k < nnz; ++k) {
        a.col_idx.push_back(static_cast<index_t>(
            rng.next_below(static_cast<std::uint64_t>(cols))));
        a.values.push_back(unit ? (rng.next_float() < 0.5f ? 1.0f : -1.0f)
                                : rng.uniform(-2.0f, 2.0f));
      }
    }
  }
  a.row_ptr[static_cast<std::size_t>(rows)] =
      static_cast<index_t>(a.values.size());
  return a;
}

Matrix random_dense(index_t rows, index_t cols, Rng& rng) {
  Matrix m(rows, cols);
  m.fill_uniform(rng, -1, 1);
  return m;
}

Matrix reference_spmm(const Csr& a, const Matrix& x) {
  return matmul(to_dense(a), x);
}

struct Shape {
  index_t rows, cols, max_row_nnz, dim;
  double fill;
};

// Dims deliberately straddle the 8/16-wide SIMD main loops (tails of 1–7)
// and the unroll factor; single-row and empty-heavy matrices included.
const std::vector<Shape>& shapes() {
  static const std::vector<Shape> s = {
      {1, 1, 1, 1, 1.0},      // degenerate
      {1, 40, 6, 33, 1.0},    // single row, odd dim
      {17, 9, 4, 7, 0.6},     // dim < SIMD width, empty rows
      {32, 24, 5, 8, 0.5},    // dim == one vector
      {64, 50, 8, 20, 0.7},   // 16-wide main loop + 4-tail
      {40, 30, 3, 128, 0.4},  // training dim, many empty rows
      {128, 64, 12, 65, 0.9}, // long rows hit the variable-nnz path
  };
  return s;
}

TEST(KernelEquivalence, AllForwardKernelsMatchDenseReference) {
  int seed = 100;
  for (const Shape& sh : shapes()) {
    for (bool unit : {true, false}) {
      Rng rng(static_cast<std::uint64_t>(seed++));
      const Csr a =
          random_csr(sh.rows, sh.cols, sh.max_row_nnz, sh.fill, unit, rng);
      const Matrix x = random_dense(sh.cols, sh.dim, rng);
      const Matrix want = reference_spmm(a, x);
      for (SpmmKernel k : all_kernels()) {
        const Matrix got = spmm_csr(a, x, k);
        EXPECT_LT(max_abs_diff(got, want), kTol)
            << "kernel " << static_cast<int>(k) << " rows=" << sh.rows
            << " dim=" << sh.dim << " unit=" << unit;
      }
      Matrix coo_out = spmm_coo(csr_to_coo(a), x);
      EXPECT_LT(max_abs_diff(coo_out, want), kTol);
    }
  }
}

TEST(KernelEquivalence, IntoVariantOverwritesStaleOutput) {
  Rng rng(7);
  const Csr a = random_csr(23, 17, 5, 0.5, true, rng);
  const Matrix x = random_dense(17, 19, rng);
  const Matrix want = reference_spmm(a, x);
  for (SpmmKernel k : all_kernels()) {
    Matrix out(23, 19);
    out.fill(321.0f);
    spmm_csr_into(a, x, out, k);
    EXPECT_LT(max_abs_diff(out, want), kTol)
        << "kernel " << static_cast<int>(k);
  }
}

// The incidence builders produce the 3/2/1-nnz rows the fused register
// paths specialise; check them against the dense reference end to end.
TEST(KernelEquivalence, IncidenceShapesTakeFusedPathsCorrectly) {
  Rng rng(11);
  const index_t n = 30, r = 5, d = 24;
  std::vector<Triplet> batch;
  for (int i = 0; i < 40; ++i) {
    batch.push_back({static_cast<std::int64_t>(rng.next_below(n)),
                     static_cast<std::int64_t>(rng.next_below(r)),
                     static_cast<std::int64_t>(rng.next_below(n))});
  }
  const Matrix e = random_dense(n + r, d, rng);
  const Matrix en = random_dense(n, d, rng);

  const Csr hrt = build_hrt_incidence_csr(batch, n, r);   // 3 nnz/row
  const Csr ht = build_ht_incidence_csr(batch, n);        // 2 nnz/row
  const Csr sel =
      build_entity_selection_csr(batch, n, TripletSlot::kHead);  // 1 nnz/row
  for (SpmmKernel k : all_kernels()) {
    EXPECT_LT(max_abs_diff(spmm_csr(hrt, e, k), reference_spmm(hrt, e)), kTol);
    EXPECT_LT(max_abs_diff(spmm_csr(ht, en, k), reference_spmm(ht, en)), kTol);
    EXPECT_LT(max_abs_diff(spmm_csr(sel, en, k), reference_spmm(sel, en)),
              kTol);
  }
}

TEST(KernelEquivalence, BothBackwardPathsAgreeWithDenseTranspose) {
  int seed = 500;
  for (const Shape& sh : shapes()) {
    Rng rng(static_cast<std::uint64_t>(seed++));
    const Csr a =
        random_csr(sh.rows, sh.cols, sh.max_row_nnz, sh.fill, true, rng);
    const Matrix g = random_dense(sh.rows, sh.dim, rng);
    const Matrix want = matmul_tn(to_dense(a), g);
    for (const char* mode : {"scatter", "transpose"}) {
      // Registry override (setenv would be a no-op: the process snapshot is
      // latched at first use).
      config::ScopedOverride force("SPTX_SPMM_BACKWARD", mode);
      EXPECT_EQ(spmm_backward_uses_transpose(a, sh.dim),
                std::string_view(mode) == "transpose")
          << "override not honoured for " << mode;
      Matrix dx(sh.cols, sh.dim);
      spmm_csr_transposed_accumulate(a, g, dx);
      EXPECT_LT(max_abs_diff(dx, want), kTol)
          << "backward mode " << mode << " rows=" << sh.rows;
      // Accumulation: a second call doubles the gradient.
      spmm_csr_transposed_accumulate(a, g, dx);
      Matrix doubled = want;
      doubled.scale_(2.0f);
      EXPECT_LT(max_abs_diff(dx, doubled), kTol);
    }
    EXPECT_LT(max_abs_diff(spmm_csr_transposed_explicit(a, g), want), kTol);
  }
}

TEST(KernelEquivalence, AutoResolvesToConcreteKernel) {
  Rng rng(42);
  const Csr small = random_csr(4, 4, 2, 1.0, true, rng);
  const Csr big = random_csr(4096, 512, 8, 1.0, true, rng);
  for (index_t dim : {8, 128, 1024}) {
    EXPECT_NE(spmm_auto_kernel(small, dim), SpmmKernel::kAuto);
    EXPECT_NE(spmm_auto_kernel(big, dim), SpmmKernel::kAuto);
  }
  // Without SIMD the auto choice must be a scalar kernel.
  if (!simd_enabled()) {
    for (index_t dim : {8, 128, 1024}) {
      const SpmmKernel k = spmm_auto_kernel(big, dim);
      EXPECT_NE(k, SpmmKernel::kSimd);
      EXPECT_NE(k, SpmmKernel::kTiledParallel);
    }
  }
}

TEST(KernelEquivalence, AutoEnvOverrideForcesKernel) {
  Rng rng(43);
  const Csr a = random_csr(64, 32, 4, 0.8, true, rng);
  // The dispatch consults the installed runtime-config snapshot: a
  // programmatic override forces a kernel...
  RuntimeConfig rc = RuntimeConfig::from_env();
  rc.set("SPTX_SPMM_KERNEL", "tiled");
  config::install(rc);
  EXPECT_EQ(spmm_auto_kernel(a, 128), SpmmKernel::kTiled);
  rc.set("SPTX_SPMM_KERNEL", "NAIVE");  // flags/enums are case-insensitive
  config::install(rc);
  EXPECT_EQ(spmm_auto_kernel(a, 128), SpmmKernel::kNaive);
  // ...an invalid name is rejected at set() time instead of being silently
  // dropped...
  EXPECT_THROW(rc.set("SPTX_SPMM_KERNEL", "not-a-kernel"), Error);
  // ...and the environment path works through a fresh snapshot.
  setenv("SPTX_SPMM_KERNEL", "tiled", 1);
  config::install(RuntimeConfig::from_env());
  EXPECT_EQ(spmm_auto_kernel(a, 128), SpmmKernel::kTiled);
  unsetenv("SPTX_SPMM_KERNEL");
  config::install(RuntimeConfig::from_env());
  EXPECT_NE(spmm_auto_kernel(a, 128), SpmmKernel::kAuto);
}

TEST(KernelEquivalence, UnitValueCacheDetectsIncidence) {
  Rng rng(44);
  const Csr unit = random_csr(16, 8, 3, 0.9, true, rng);
  const Csr general = random_csr(16, 8, 3, 0.9, false, rng);
  EXPECT_TRUE(unit.unit_values());
  EXPECT_FALSE(general.unit_values());
  // Cached transpose matches the free-function transpose.
  EXPECT_LT(max_abs_diff(to_dense(unit.transposed()), to_dense(transpose(unit))),
            0.0f + 1e-7f);
  EXPECT_TRUE(unit.transposed().unit_values());
}

}  // namespace
}  // namespace sptx
