// Tests for the profiling substrate: FLOP counter, hotspot registry,
// phase timers, and early stopping (trainer's loss-driven stopper).
#include <gtest/gtest.h>

#include <thread>

#include "src/kg/synthetic.hpp"
#include "src/models/model.hpp"
#include "src/profiling/flops.hpp"
#include "src/profiling/timer.hpp"
#include "src/train/trainer.hpp"

namespace sptx {
namespace {

TEST(Flops, WindowMeasuresDelta) {
  profiling::FlopWindow outer;
  profiling::count_flops(100);
  profiling::FlopWindow inner;
  profiling::count_flops(50);
  EXPECT_EQ(inner.elapsed(), 50);
  EXPECT_EQ(outer.elapsed(), 150);
}

TEST(Flops, MatrixOpsAreCounted) {
  Matrix a(10, 10), b(10, 10);
  profiling::FlopWindow window;
  a.add_(b);
  EXPECT_EQ(window.elapsed(), 100);
  a.axpy_(2.0f, b);
  EXPECT_EQ(window.elapsed(), 300);  // +2 per element
}

TEST(Hotspots, RankedOrdersByTime) {
  auto& reg = profiling::HotspotRegistry::instance();
  reg.reset();
  reg.add("fast_fn", 0.010);
  reg.add("slow_fn", 0.100);
  reg.add("fast_fn", 0.005);  // accumulates onto the same key
  const auto ranked = reg.ranked();
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].first, "slow_fn");
  EXPECT_NEAR(ranked[1].second, 0.015, 1e-9);
  EXPECT_NEAR(reg.total(), 0.115, 1e-9);
  reg.reset();
  EXPECT_EQ(reg.ranked().size(), 0u);
}

TEST(Hotspots, ScopedHotspotAttributesTime) {
  auto& reg = profiling::HotspotRegistry::instance();
  reg.reset();
  {
    profiling::ScopedHotspot h("sleepy_section");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const auto ranked = reg.ranked();
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_EQ(ranked[0].first, "sleepy_section");
  EXPECT_GT(ranked[0].second, 0.004);
  reg.reset();
}

TEST(PhaseTimer, AccumulateAndCombine) {
  profiling::PhaseTimer a;
  {
    profiling::ScopedAccum t(a.forward_s);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(a.forward_s, 0.001);
  profiling::PhaseTimer b;
  b.backward_s = 1.0;
  a += b;
  EXPECT_EQ(a.backward_s, 1.0);
  EXPECT_GT(a.total(), 1.0);
  a.reset();
  EXPECT_EQ(a.total(), 0.0);
}

TEST(EarlyStopping, StopsWhenLossPlateaus) {
  Rng rng(5);
  const kg::Dataset ds = kg::generate({"es", 40, 3, 200}, rng, 0.0, 0.0);
  models::ModelConfig cfg;
  cfg.dim = 8;
  Rng mr(6);
  auto model = models::make_sparse_model("TransE", 40, 3, cfg, mr);
  train::TrainConfig tc;
  tc.epochs = 500;
  tc.batch_size = 256;
  tc.lr = 0.0f;  // frozen weights → loss can never improve
  tc.patience = 3;
  const auto result = train::train(*model, ds.train, tc);
  // Stops after the first epoch set the best loss + 3 flat epochs.
  EXPECT_LE(result.epoch_loss.size(), 5u);
}

TEST(EarlyStopping, DisabledByDefault) {
  Rng rng(7);
  const kg::Dataset ds = kg::generate({"es2", 40, 3, 200}, rng, 0.0, 0.0);
  models::ModelConfig cfg;
  cfg.dim = 8;
  Rng mr(8);
  auto model = models::make_sparse_model("TransE", 40, 3, cfg, mr);
  train::TrainConfig tc;
  tc.epochs = 12;
  tc.batch_size = 256;
  tc.lr = 0.0f;  // flat loss, but patience defaults to off
  const auto result = train::train(*model, ds.train, tc);
  EXPECT_EQ(result.epoch_loss.size(), 12u);
}

}  // namespace
}  // namespace sptx
