// Tests for zero-downtime snapshot hot-swap (serve::InferenceSession::
// install + Engine::publish):
//
//  * consistency under fire — reader threads hammer scoring and top-k while
//    snapshots flip repeatedly; every observed result must match the
//    brute-force answer of EXACTLY ONE published version (no torn reads,
//    no blend of old and new weights);
//  * drain — the old snapshot is released once its last in-flight request
//    finishes (observed via weak_ptr expiry), never while still in use
//    (ASan/TSan would flag a use-after-free on this suite otherwise);
//  * contracts — install() rejects vocabulary changes, publish() bumps the
//    version monotonically and fans out to every live session.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "src/api/engine.hpp"
#include "src/kg/synthetic.hpp"

namespace sptx {
namespace {

constexpr index_t kEntities = 120;
constexpr index_t kRelations = 5;

ModelSpec small_spec(std::uint64_t seed = 9) {
  ModelSpec spec;
  spec.family = "TransE";
  spec.config.dim = 12;
  spec.seed = seed;
  return spec;
}

/// Perturb the engine's model so each published version scores measurably
/// differently (a hot-swap of identical weights would be unobservable).
void nudge_weights(Engine& engine, float delta) {
  Matrix& table = engine.model().params()[0].mutable_value();
  for (index_t i = 0; i < table.rows(); ++i) table.at(i, 0) += delta;
}

TEST(HotSwap, InstallFlipsVersionForNewRequestsOnly) {
  Engine engine;
  engine.create_model(small_spec(), kEntities, kRelations);
  auto session = engine.open_session({});
  const auto v1 = session->snapshot_version();
  const Triplet probe{3, 1, 8};
  const float before = session->score_one(probe);

  nudge_weights(engine, 0.5f);
  const auto v2 = engine.publish();
  EXPECT_GT(v2, v1);
  EXPECT_EQ(session->snapshot_version(), v2);
  EXPECT_EQ(engine.published_version(), v2);
  EXPECT_EQ(session->stats().installs, 1);
  EXPECT_NE(session->score_one(probe), before);  // new weights serve now
}

TEST(HotSwap, InstallRejectsVocabularyChange) {
  Engine engine;
  engine.create_model(small_spec(), kEntities, kRelations);
  auto session = engine.open_session({});

  Engine other;
  other.create_model(small_spec(), kEntities + 1, kRelations);
  auto wrong = serve::make_serving_snapshot(
      other.freeze(), serve::AnnMode::kOff, 0,
      models::next_snapshot_version());
  EXPECT_THROW(session->install(wrong), Error);
  // The failed install left the original snapshot serving.
  EXPECT_EQ(session->stats().installs, 0);
  session->score_one({0, 0, 0});
}

TEST(HotSwap, PublishFansOutToEveryLiveSession) {
  Engine engine;
  engine.create_model(small_spec(), kEntities, kRelations);
  auto a = engine.open_session({});
  auto b = engine.open_session({});
  nudge_weights(engine, 0.25f);
  const auto v = engine.publish();
  EXPECT_EQ(a->snapshot_version(), v);
  EXPECT_EQ(b->snapshot_version(), v);
}

TEST(HotSwap, OldSnapshotDrainsAfterLastReferenceDrops) {
  Engine engine;
  engine.create_model(small_spec(), kEntities, kRelations);
  auto session = engine.open_session({});

  // Hold the pre-swap snapshot the way an in-flight request would.
  auto held = session->snapshot();
  std::weak_ptr<const serve::ServingSnapshot> watch = held;
  nudge_weights(engine, 0.125f);
  engine.publish();

  // Swapped out but still referenced: must stay alive (the in-flight
  // request is still scoring against it)...
  EXPECT_FALSE(watch.expired());
  EXPECT_NE(session->snapshot().get(), held.get());
  held.reset();
  // ...and must free once the last in-flight reference drains.
  EXPECT_TRUE(watch.expired());
}

// The load-bearing test: readers race repeated hot-swaps, and every result
// must be explainable by exactly one published version. Each version gets a
// distinct weight nudge, so a torn read (half-old, half-new embeddings)
// produces a score no version ever yields. Every version and its expected
// scores are built BEFORE the readers start — the race is confined to the
// session's RCU cell, which is the thing under test.
TEST(HotSwap, ConcurrentReadersNeverObserveTornState) {
  constexpr int kReaders = 4;
  constexpr int kSwaps = 12;
  constexpr std::int64_t kQueriesPerReader = 3000;

  Engine engine;
  engine.create_model(small_spec(), kEntities, kRelations);
  serve::SessionOptions so;
  so.ann = serve::AnnMode::kOff;  // isolate the swap machinery itself
  auto session = engine.open_session(so);

  const std::vector<Triplet> probes = {
      {0, 0, 1}, {5, 1, 9}, {17, 2, 3}, {40, 4, 99}, {110, 3, 55}};
  std::vector<std::shared_ptr<const serve::ServingSnapshot>> versions = {
      session->snapshot()};
  for (int s = 0; s < kSwaps; ++s) {
    nudge_weights(engine, 0.0625f);
    versions.push_back(serve::make_serving_snapshot(
        engine.freeze(), serve::AnnMode::kOff, 0,
        models::next_snapshot_version()));
  }
  // Per-version expected score for each probe, straight from the frozen
  // replicas (immutable from here on — safe to read from every thread).
  std::vector<std::vector<float>> expected;
  for (const auto& snap : versions) {
    std::vector<float> scores;
    for (const auto& t : probes)
      scores.push_back(snap->model->score(std::span<const Triplet>(&t, 1))[0]);
    expected.push_back(std::move(scores));
  }

  std::atomic<std::int64_t> checked{0};
  std::atomic<int> torn{0};
  std::vector<std::thread> readers;
  for (int w = 0; w < kReaders; ++w) {
    readers.emplace_back([&, w] {
      Rng rng(static_cast<std::uint64_t>(100 + w));
      for (std::int64_t i = 0; i < kQueriesPerReader; ++i) {
        const auto p =
            static_cast<std::size_t>(rng.next_below(probes.size()));
        const float got = session->score_one(probes[p]);
        // Valid iff SOME version produced exactly this score.
        bool matched = false;
        for (const auto& scores : expected)
          if (scores[p] == got) {
            matched = true;
            break;
          }
        if (!matched) torn.fetch_add(1);
        checked.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Installer: flip through every pre-built version while the readers run.
  for (std::size_t v = 1; v < versions.size(); ++v) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    session->install(versions[v]);
  }
  for (auto& t : readers) t.join();

  EXPECT_EQ(checked.load(), kReaders * kQueriesPerReader);
  EXPECT_EQ(torn.load(), 0)
      << "a reader observed a score no published version produces";
  EXPECT_EQ(session->stats().installs, kSwaps);
  EXPECT_EQ(session->snapshot_version(), versions.back()->version);
}

// Same race through the top-k path with the ANN index ON: every top-k
// result must carry scores consistent with one version's weights end to
// end — probe, exact re-rank, and selection all resolved one snapshot, and
// each version swaps in its own freshly built index.
TEST(HotSwap, ConcurrentTopKUnderSwapsStaysVersionConsistent) {
  constexpr int kSwaps = 6;

  Engine engine;
  engine.create_model(small_spec(), kEntities, kRelations);
  serve::SessionOptions so;
  so.ann = serve::AnnMode::kOn;
  auto session = engine.open_session(so);
  ASSERT_NE(session->snapshot()->ann, nullptr);

  const std::vector<std::int64_t> anchors = {2, 31, 77};
  std::vector<std::shared_ptr<const serve::ServingSnapshot>> versions = {
      session->snapshot()};
  for (int s = 0; s < kSwaps; ++s) {
    nudge_weights(engine, 0.03125f);
    versions.push_back(serve::make_serving_snapshot(
        engine.freeze(), serve::AnnMode::kOn, 0,
        models::next_snapshot_version()));
  }
  // Expected top-3 per (version, anchor), computed before any reader
  // starts from a reference session sharing each version's snapshot (same
  // weights AND same index — the ANN path is deterministic, so the live
  // session must reproduce exactly one version's answer).
  std::vector<std::vector<std::vector<serve::Prediction>>> expected;
  for (const auto& snap : versions) {
    serve::InferenceSession ref(snap, so);
    std::vector<std::vector<serve::Prediction>> per_anchor;
    for (const auto a : anchors) per_anchor.push_back(ref.top_tails(a, 1, 3));
    expected.push_back(std::move(per_anchor));
  }

  std::atomic<bool> stop{false};
  std::atomic<int> inconsistent{0};
  std::thread reader([&] {
    Rng rng(7);
    while (!stop.load()) {
      const auto idx = static_cast<std::size_t>(rng.next_below(3));
      const auto got = session->top_tails(anchors[idx], 1, 3);
      bool matched = false;
      for (const auto& per_anchor : expected) {
        const auto& want = per_anchor[idx];
        if (want.size() == got.size()) {
          bool same = true;
          for (std::size_t i = 0; i < want.size(); ++i)
            same = same && want[i].entity == got[i].entity &&
                   want[i].score == got[i].score;
          if (same) {
            matched = true;
            break;
          }
        }
      }
      if (!matched) inconsistent.fetch_add(1);
    }
  });

  for (std::size_t v = 1; v < versions.size(); ++v) {
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
    session->install(versions[v]);
  }
  stop.store(true);
  reader.join();

  EXPECT_EQ(inconsistent.load(), 0)
      << "a top-k result mixed weights from different versions";
  EXPECT_EQ(session->stats().installs, kSwaps);
}

}  // namespace
}  // namespace sptx
