// Tests for the logistic ranking loss and multi-negative training.
#include <gtest/gtest.h>

#include <cmath>

#include "gradcheck.hpp"
#include "src/autograd/ops.hpp"
#include "src/kg/negative_sampler.hpp"
#include "src/eval/link_prediction.hpp"
#include "src/kg/synthetic.hpp"
#include "src/models/model.hpp"
#include "src/train/trainer.hpp"

namespace sptx {
namespace {

using autograd::Variable;

TEST(LogisticLoss, ValueMatchesSoftplusByHand) {
  Variable pos = Variable::leaf(Matrix{{1.0f}, {0.0f}}, true);
  Variable neg = Variable::leaf(Matrix{{2.0f}, {0.0f}}, false);
  // z = margin + pos − neg = {−0.5, 0.5}; softplus averaged.
  Variable loss = autograd::logistic_ranking_loss(pos, neg, 0.5f);
  const float expected =
      0.5f * (std::log1p(std::exp(-0.5f)) + std::log1p(std::exp(-0.5f)) +
              0.5f);
  EXPECT_NEAR(loss.value().at(0, 0), expected, 1e-5f);
}

TEST(LogisticLoss, GradientMatchesFiniteDifferences) {
  Matrix neg{{0.9f}, {3.0f}, {0.2f}, {2.0f}};
  testing::expect_gradient_matches(
      Matrix{{1.0f}, {0.5f}, {2.0f}, {-1.0f}}, [&](Variable& p) {
        Variable n = Variable::leaf(neg, false);
        return autograd::logistic_ranking_loss(p, n, 0.5f);
      });
}

TEST(LogisticLoss, IsSmoothUpperBoundOfHinge) {
  // softplus(z) ≥ max(0, z) everywhere, so the logistic loss dominates the
  // hinge loss on the same scores.
  Rng rng(3);
  Matrix pv(32, 1), nv(32, 1);
  pv.fill_uniform(rng, -2, 2);
  nv.fill_uniform(rng, -2, 2);
  Variable pos = Variable::leaf(pv, true);
  Variable neg = Variable::leaf(nv, false);
  const float hinge =
      autograd::margin_ranking_loss(pos, neg, 0.5f).value().at(0, 0);
  const float logistic =
      autograd::logistic_ranking_loss(pos, neg, 0.5f).value().at(0, 0);
  EXPECT_GE(logistic, hinge);
}

TEST(LogisticLoss, NumericallyStableAtExtremes) {
  Variable pos = Variable::leaf(Matrix{{1000.0f}, {-1000.0f}}, true);
  Variable neg = Variable::leaf(Matrix{{0.0f}, {0.0f}}, false);
  Variable loss = autograd::logistic_ranking_loss(pos, neg, 0.0f);
  EXPECT_TRUE(std::isfinite(loss.value().at(0, 0)));
  // softplus(1000)/2 ≈ 500; softplus(−1000) ≈ 0.
  EXPECT_NEAR(loss.value().at(0, 0), 500.0f, 1.0f);
  loss.backward();
  EXPECT_TRUE(std::isfinite(pos.grad().max_abs()));
}

TEST(LogisticLoss, ModelsTrainWithIt) {
  Rng rng(4);
  const kg::Dataset ds = kg::generate({"log", 60, 4, 500}, rng, 0.0, 0.0);
  models::ModelConfig cfg;
  cfg.dim = 16;
  cfg.loss = models::LossType::kLogistic;
  Rng mr(5);
  auto model = models::make_sparse_model("TransE", 60, 4, cfg, mr);
  train::TrainConfig tc;
  tc.epochs = 15;
  tc.batch_size = 256;
  tc.lr = 0.05f;
  const auto result = train::train(*model, ds.train, tc);
  EXPECT_LT(result.epoch_loss.back(), result.epoch_loss.front());
}

TEST(MultiNegative, PregenerateKLayoutIsRepetitionMajor) {
  Rng rng(6);
  TripletStore store(10, 2, {{0, 0, 1}, {2, 1, 3}});
  kg::NegativeSampler sampler(store, kg::CorruptionScheme::kUniform);
  const auto negs = sampler.pregenerate_k(store.triplets(), 3, rng);
  ASSERT_EQ(negs.size(), 6u);
  // Entry rep*2 + i corrupts positive i: relation must match per column.
  for (int rep = 0; rep < 3; ++rep) {
    EXPECT_EQ(negs[static_cast<std::size_t>(rep * 2)].relation, 0);
    EXPECT_EQ(negs[static_cast<std::size_t>(rep * 2 + 1)].relation, 1);
  }
}

TEST(MultiNegative, KEqualsOneMatchesBaselineProtocol) {
  Rng rng1(7), rng2(7);
  TripletStore store(20, 2, {{0, 0, 1}, {2, 1, 3}, {4, 0, 5}});
  kg::NegativeSampler sampler(store, kg::CorruptionScheme::kUniform);
  EXPECT_EQ(sampler.pregenerate(store.triplets(), rng1),
            sampler.pregenerate_k(store.triplets(), 1, rng2));
}

TEST(MultiNegative, TrainerRunsAndConverges) {
  Rng rng(8);
  const kg::Dataset ds = kg::generate({"multi", 60, 4, 400}, rng, 0.0, 0.0);
  models::ModelConfig cfg;
  cfg.dim = 16;
  Rng mr(9);
  auto model = models::make_sparse_model("TransE", 60, 4, cfg, mr);
  train::TrainConfig tc;
  tc.epochs = 10;
  tc.batch_size = 128;
  tc.lr = 0.05f;
  tc.negatives_per_positive = 4;
  const auto result = train::train(*model, ds.train, tc);
  EXPECT_LT(result.epoch_loss.back(), result.epoch_loss.front());
}

TEST(MultiNegative, InvalidKThrows) {
  Rng rng(10);
  const kg::Dataset ds = kg::generate({"badk", 20, 2, 50}, rng, 0.0, 0.0);
  models::ModelConfig cfg;
  cfg.dim = 8;
  Rng mr(11);
  auto model = models::make_sparse_model("TransE", 20, 2, cfg, mr);
  train::TrainConfig tc;
  tc.negatives_per_positive = 0;
  EXPECT_THROW(train::train(*model, ds.train, tc), Error);
}

TEST(MultiNegative, MoreNegativesSharpenRanking) {
  // With everything else equal, k=8 negatives should not rank worse than
  // k=1 on the learnable synthetic structure (usually better).
  Rng rng(12);
  const kg::Dataset ds = kg::generate({"sharp", 80, 4, 900}, rng, 0.0, 0.1);
  auto run = [&](int k) {
    models::ModelConfig cfg;
    cfg.dim = 24;
    cfg.normalize_entities = false;
    Rng mr(13);
    auto model = models::make_sparse_model("TransE", 80, 4, cfg, mr);
    train::TrainConfig tc;
    tc.epochs = 40;
    tc.batch_size = 256;
    tc.lr = 0.5f;
    tc.use_adagrad = true;
    tc.negatives_per_positive = k;
    train::train(*model, ds.train, tc);
    eval::EvalConfig ec;
    ec.max_queries = 40;
    return eval::evaluate(*model, ds, ec).hits_at_10;
  };
  const double h1 = run(1);
  const double h8 = run(8);
  EXPECT_GE(h8 + 0.05, h1) << "k=8 should be competitive with k=1";
}

}  // namespace
}  // namespace sptx
