// Tests for the semiring-generalised SpMM (Appendix D).
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.hpp"
#include "src/sparse/incidence.hpp"
#include "src/sparse/semiring.hpp"
#include "src/sparse/spmm.hpp"

namespace sptx {
namespace {

Matrix random_dense(index_t rows, index_t cols, Rng& rng) {
  Matrix m(rows, cols);
  m.fill_uniform(rng, 0.1f, 1.0f);  // positive: safe for times-times
  return m;
}

TEST(Semiring, PlusTimesEqualsPlainSpmm) {
  Rng rng(31);
  std::vector<Triplet> batch = {{0, 1, 2}, {3, 0, 1}, {2, 2, 0}};
  const Csr a = build_hrt_incidence_csr(batch, 5, 3);
  const Matrix x = random_dense(8, 6, rng);
  EXPECT_LT(max_abs_diff(spmm_semiring<PlusTimesSemiring>(a, x),
                         spmm_csr(a, x)),
            1e-4f);
}

TEST(Semiring, TimesTimesComputesDistMultProduct) {
  Rng rng(32);
  const index_t n = 6, r = 2, d = 4;
  const Matrix e = random_dense(n + r, d, rng);
  // DistMult incidence: +1 at h, t, and offset r columns (coefficient is
  // applied multiplicatively, so +1 everywhere).
  std::vector<Triplet> batch = {{1, 0, 4}, {5, 1, 2}};
  Csr a = build_hrt_incidence_csr(batch, n, r);
  for (auto& v : a.values) v = 1.0f;
  const Matrix z = spmm_semiring<TimesTimesSemiring>(a, e);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    for (index_t j = 0; j < d; ++j) {
      const float expected = e.at(batch[i].head, j) *
                             e.at(n + batch[i].relation, j) *
                             e.at(batch[i].tail, j);
      EXPECT_NEAR(z.at(static_cast<index_t>(i), j), expected, 1e-5f);
    }
  }
}

TEST(Semiring, TimesTimesIdentityOnEmptyRow) {
  Csr a;
  a.rows = 1;
  a.cols = 2;
  a.row_ptr = {0, 0};
  Matrix x(2, 3);
  const Matrix z = spmm_semiring<TimesTimesSemiring>(a, x);
  // Empty product = multiplicative identity.
  for (index_t j = 0; j < 3; ++j) EXPECT_FLOAT_EQ(z.at(0, j), 1.0f);
}

TEST(Semiring, MaxPlusSelectsMaximum) {
  Csr a;
  a.rows = 1;
  a.cols = 3;
  a.row_ptr = {0, 3};
  a.col_idx = {0, 1, 2};
  a.values = {1.0f, 2.0f, 0.0f};
  Matrix x{{5.0f}, {1.0f}, {4.0f}};
  const Matrix z = spmm_semiring<MaxPlusSemiring>(a, x);
  // max(1+5, 2+1, 0+4) = 6.
  EXPECT_FLOAT_EQ(z.at(0, 0), 6.0f);
}

TEST(Semiring, ComplExModeMatchesScalarComplexMath) {
  Rng rng(33);
  const index_t n = 4, r = 2, dc = 3;  // 3 complex components
  Matrix e(n + r, 2 * dc);
  e.fill_uniform(rng, -1, 1);
  std::vector<Triplet> batch = {{0, 1, 3}};
  const Csr a = build_hrt_incidence_csr(batch, n, r);
  const Matrix z =
      spmm_complex_hrt(a, e, ComplexSpmmMode::kComplExConjTail);
  const float* h = e.row(0);
  const float* rv = e.row(n + 1);
  const float* t = e.row(3);
  for (index_t j = 0; j < dc; ++j) {
    // (h * r) * conj(t) per component.
    const float hr_re = h[2 * j] * rv[2 * j] - h[2 * j + 1] * rv[2 * j + 1];
    const float hr_im = h[2 * j] * rv[2 * j + 1] + h[2 * j + 1] * rv[2 * j];
    const float exp_re = hr_re * t[2 * j] + hr_im * t[2 * j + 1];
    const float exp_im = -hr_re * t[2 * j + 1] + hr_im * t[2 * j];
    EXPECT_NEAR(z.at(0, 2 * j), exp_re, 1e-5f);
    EXPECT_NEAR(z.at(0, 2 * j + 1), exp_im, 1e-5f);
  }
}

TEST(Semiring, RotateModeSubtractsTail) {
  Rng rng(34);
  const index_t n = 4, r = 2, dc = 2;
  Matrix e(n + r, 2 * dc);
  e.fill_uniform(rng, -1, 1);
  std::vector<Triplet> batch = {{1, 0, 2}};
  const Csr a = build_hrt_incidence_csr(batch, n, r);
  const Matrix z = spmm_complex_hrt(a, e, ComplexSpmmMode::kRotateSubTail);
  const float* h = e.row(1);
  const float* rv = e.row(n + 0);
  const float* t = e.row(2);
  for (index_t j = 0; j < dc; ++j) {
    const float hr_re = h[2 * j] * rv[2 * j] - h[2 * j + 1] * rv[2 * j + 1];
    const float hr_im = h[2 * j] * rv[2 * j + 1] + h[2 * j + 1] * rv[2 * j];
    EXPECT_NEAR(z.at(0, 2 * j), hr_re - t[2 * j], 1e-5f);
    EXPECT_NEAR(z.at(0, 2 * j + 1), hr_im - t[2 * j + 1], 1e-5f);
  }
}

TEST(Semiring, OddComplexDimThrows) {
  Csr a;
  a.rows = 1;
  a.cols = 1;
  a.row_ptr = {0, 1};
  a.col_idx = {0};
  a.values = {1.0f};
  Matrix x(1, 3);  // odd
  EXPECT_THROW(spmm_complex_hrt(a, x, ComplexSpmmMode::kRotateSubTail),
               Error);
}

// Order independence: the tail term may appear anywhere in the row.
TEST(Semiring, ComplexResultIndependentOfTailPosition) {
  Rng rng(35);
  Matrix e(5, 4);
  e.fill_uniform(rng, -1, 1);
  // Hand-build two CSR rows selecting the same operands in different order.
  auto make = [&](std::vector<index_t> cols, std::vector<float> vals) {
    Csr a;
    a.rows = 1;
    a.cols = 5;
    a.row_ptr = {0, 3};
    a.col_idx = std::move(cols);
    a.values = std::move(vals);
    return a;
  };
  const Csr first = make({0, 4, 2}, {1.0f, 1.0f, -1.0f});
  const Csr second = make({2, 0, 4}, {-1.0f, 1.0f, 1.0f});
  for (auto mode : {ComplexSpmmMode::kComplExConjTail,
                    ComplexSpmmMode::kRotateSubTail}) {
    EXPECT_LT(max_abs_diff(spmm_complex_hrt(first, e, mode),
                           spmm_complex_hrt(second, e, mode)),
              1e-6f);
  }
}

}  // namespace
}  // namespace sptx
