// Unit tests for the dense Matrix substrate.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.hpp"
#include "src/tensor/matrix.hpp"

namespace sptx {
namespace {

TEST(Matrix, DefaultConstructedIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, ConstructorZeroInitialises) {
  Matrix m(3, 4);
  for (index_t i = 0; i < 3; ++i)
    for (index_t j = 0; j < 4; ++j) EXPECT_EQ(m.at(i, j), 0.0f);
}

TEST(Matrix, InitializerListLayout) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.at(0, 0), 1.0f);
  EXPECT_EQ(m.at(1, 2), 6.0f);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1, 2}, {3}}), Error);
}

TEST(Matrix, CopyIsDeep) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b(a);
  b.at(0, 0) = 99.0f;
  EXPECT_EQ(a.at(0, 0), 1.0f);
  EXPECT_EQ(b.at(0, 0), 99.0f);
}

TEST(Matrix, MoveTransfersOwnership) {
  Matrix a{{1, 2}, {3, 4}};
  const float* ptr = a.data();
  Matrix b(std::move(a));
  EXPECT_EQ(b.data(), ptr);
  EXPECT_TRUE(a.empty());
}

TEST(Matrix, SelfAssignmentIsSafe) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix& ref = a;
  a = ref;
  EXPECT_EQ(a.at(1, 1), 4.0f);
}

TEST(Matrix, AssignmentReshapes) {
  Matrix a(2, 2);
  Matrix b{{1, 2, 3}};
  a = b;
  EXPECT_EQ(a.rows(), 1);
  EXPECT_EQ(a.cols(), 3);
  EXPECT_EQ(a.at(0, 2), 3.0f);
}

TEST(Matrix, AddSubScale) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{10, 20}, {30, 40}};
  Matrix c = add(a, b);
  EXPECT_EQ(c.at(1, 1), 44.0f);
  Matrix d = sub(b, a);
  EXPECT_EQ(d.at(0, 0), 9.0f);
  Matrix e = scaled(a, 2.0f);
  EXPECT_EQ(e.at(1, 0), 6.0f);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 2);
  Matrix b(2, 3);
  EXPECT_THROW(a.add_(b), Error);
  EXPECT_THROW(a.sub_(b), Error);
  EXPECT_THROW(a.mul_(b), Error);
}

TEST(Matrix, HadamardProduct) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{2, 2}, {2, 2}};
  Matrix c = hadamard(a, b);
  EXPECT_EQ(c.at(0, 1), 4.0f);
  EXPECT_EQ(c.at(1, 1), 8.0f);
}

TEST(Matrix, AxpyAccumulates) {
  Matrix a{{1, 1}};
  Matrix b{{2, 3}};
  a.axpy_(0.5f, b);
  EXPECT_FLOAT_EQ(a.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(a.at(0, 1), 2.5f);
}

TEST(Matrix, ScaleRowsByColumn) {
  Matrix x{{1, 2}, {3, 4}};
  Matrix col{{2}, {10}};
  x.scale_rows_(col);
  EXPECT_EQ(x.at(0, 1), 4.0f);
  EXPECT_EQ(x.at(1, 0), 30.0f);
}

TEST(Matrix, ScaleRowsRejectsWrongShape) {
  Matrix x(2, 2);
  Matrix bad(2, 2);
  EXPECT_THROW(x.scale_rows_(bad), Error);
}

TEST(Matrix, NormalizeRowsL2) {
  Matrix x{{3, 4}, {0, 0}};
  x.normalize_rows_l2_();
  EXPECT_NEAR(x.at(0, 0), 0.6f, 1e-6);
  EXPECT_NEAR(x.at(0, 1), 0.8f, 1e-6);
  // Zero rows stay zero (no NaN).
  EXPECT_EQ(x.at(1, 0), 0.0f);
}

TEST(Matrix, MatmulAgainstHandComputed) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  Matrix c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 50.0f);
}

TEST(Matrix, MatmulShapeMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_THROW(matmul(a, b), Error);
}

TEST(Matrix, MatmulTnMatchesExplicitTranspose) {
  Rng rng(7);
  Matrix a(5, 3);
  a.fill_uniform(rng, -1, 1);
  Matrix b(5, 4);
  b.fill_uniform(rng, -1, 1);
  // Aᵀ·B via matmul_tn vs building Aᵀ by hand.
  Matrix at(3, 5);
  for (index_t i = 0; i < 5; ++i)
    for (index_t j = 0; j < 3; ++j) at.at(j, i) = a.at(i, j);
  EXPECT_LT(max_abs_diff(matmul_tn(a, b), matmul(at, b)), 1e-5f);
}

TEST(Matrix, MatmulNtMatchesExplicitTranspose) {
  Rng rng(8);
  Matrix a(4, 3);
  a.fill_uniform(rng, -1, 1);
  Matrix b(6, 3);
  b.fill_uniform(rng, -1, 1);
  Matrix bt(3, 6);
  for (index_t i = 0; i < 6; ++i)
    for (index_t j = 0; j < 3; ++j) bt.at(j, i) = b.at(i, j);
  EXPECT_LT(max_abs_diff(matmul_nt(a, b), matmul(a, bt)), 1e-5f);
}

TEST(Matrix, RowNorms) {
  Matrix x{{3, 4}, {-1, -1}};
  Matrix l2 = row_l2_norm(x);
  EXPECT_NEAR(l2.at(0, 0), 5.0f, 1e-6);
  Matrix l1 = row_l1_norm(x);
  EXPECT_NEAR(l1.at(1, 0), 2.0f, 1e-6);
  Matrix sq = row_squared_l2(x);
  EXPECT_NEAR(sq.at(0, 0), 25.0f, 1e-5);
}

TEST(Matrix, RowDot) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  Matrix d = row_dot(a, b);
  EXPECT_FLOAT_EQ(d.at(0, 0), 17.0f);
  EXPECT_FLOAT_EQ(d.at(1, 0), 53.0f);
}

TEST(Matrix, SumAndMaxAbs) {
  Matrix x{{1, -5}, {2, 2}};
  EXPECT_FLOAT_EQ(x.sum(), 0.0f);
  EXPECT_FLOAT_EQ(x.max_abs(), 5.0f);
  EXPECT_FLOAT_EQ(x.squared_norm(), 1 + 25 + 4 + 4);
}

TEST(Matrix, FillUniformRespectsBounds) {
  Rng rng(3);
  Matrix x(100, 10);
  x.fill_uniform(rng, -0.25f, 0.75f);
  for (index_t i = 0; i < x.size(); ++i) {
    EXPECT_GE(x.data()[i], -0.25f);
    EXPECT_LT(x.data()[i], 0.75f);
  }
}

TEST(Matrix, XavierBoundDependsOnCols) {
  Rng rng(4);
  Matrix x(50, 64);
  x.fill_xavier(rng);
  const float bound = 6.0f / std::sqrt(64.0f);
  EXPECT_LE(x.max_abs(), bound);
  EXPECT_GT(x.max_abs(), bound * 0.5f);  // actually spread out
}

TEST(Matrix, FillNormalHasRoughlyUnitSpread) {
  Rng rng(5);
  Matrix x(200, 50);
  x.fill_normal(rng, 1.0f);
  const double var =
      static_cast<double>(x.squared_norm()) / static_cast<double>(x.size());
  EXPECT_NEAR(var, 1.0, 0.1);
}

// Property sweep: add/sub/axpy consistency over shapes.
class MatrixShapeTest : public ::testing::TestWithParam<std::pair<int, int>> {
};

TEST_P(MatrixShapeTest, AddThenSubRoundTrips) {
  const auto [r, c] = GetParam();
  Rng rng(11);
  Matrix a(r, c), b(r, c);
  a.fill_uniform(rng, -1, 1);
  b.fill_uniform(rng, -1, 1);
  Matrix sum = add(a, b);
  Matrix back = sub(sum, b);
  EXPECT_LT(max_abs_diff(back, a), 1e-5f);
}

TEST_P(MatrixShapeTest, RowSquaredMatchesL2Squared) {
  const auto [r, c] = GetParam();
  Rng rng(12);
  Matrix a(r, c);
  a.fill_uniform(rng, -2, 2);
  Matrix l2 = row_l2_norm(a);
  Matrix sq = row_squared_l2(a);
  for (index_t i = 0; i < a.rows(); ++i)
    EXPECT_NEAR(l2.at(i, 0) * l2.at(i, 0), sq.at(i, 0),
                1e-3f * (1.0f + sq.at(i, 0)));
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatrixShapeTest,
                         ::testing::Values(std::pair{1, 1}, std::pair{1, 17},
                                           std::pair{5, 8}, std::pair{33, 3},
                                           std::pair{64, 64},
                                           std::pair{7, 129}));

}  // namespace
}  // namespace sptx
