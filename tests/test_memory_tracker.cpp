// Tests for the instrumented allocation tracker (Table 5's measurement).
#include <gtest/gtest.h>

#include "src/tensor/matrix.hpp"
#include "src/tensor/memory_tracker.hpp"

namespace sptx {
namespace {

TEST(MemoryTracker, MatrixAllocationIsTracked) {
  auto& tracker = MemoryTracker::instance();
  const std::int64_t before = tracker.current();
  {
    Matrix m(100, 100);
    EXPECT_EQ(tracker.current() - before,
              static_cast<std::int64_t>(100 * 100 * sizeof(float)));
  }
  EXPECT_EQ(tracker.current(), before);
}

TEST(MemoryTracker, PeakCapturesHighWaterMark) {
  auto& tracker = MemoryTracker::instance();
  tracker.reset_peak();
  const std::int64_t base = tracker.peak();
  {
    Matrix a(64, 64);
    Matrix b(64, 64);
    EXPECT_GE(tracker.peak() - base,
              static_cast<std::int64_t>(2 * 64 * 64 * sizeof(float)));
  }
  // Peak persists after deallocation.
  EXPECT_GE(tracker.peak() - base,
            static_cast<std::int64_t>(2 * 64 * 64 * sizeof(float)));
}

TEST(MemoryTracker, ScopedWindowMeasuresScope) {
  ScopedPeakWindow window;
  const std::int64_t baseline = window.peak_bytes();
  Matrix big(1000, 100);
  EXPECT_GE(window.peak_bytes() - baseline,
            static_cast<std::int64_t>(big.bytes()));
}

TEST(MemoryTracker, MoveDoesNotDoubleCount) {
  auto& tracker = MemoryTracker::instance();
  const std::int64_t before = tracker.current();
  Matrix a(32, 32);
  Matrix b(std::move(a));
  EXPECT_EQ(tracker.current() - before,
            static_cast<std::int64_t>(32 * 32 * sizeof(float)));
}

TEST(MemoryTracker, EmptyMatrixAllocatesNothing) {
  auto& tracker = MemoryTracker::instance();
  const std::int64_t before = tracker.current();
  Matrix a;
  Matrix b(0, 10);
  EXPECT_EQ(tracker.current(), before);
}

TEST(MemoryTracker, AllocationCountIncreases) {
  auto& tracker = MemoryTracker::instance();
  const std::int64_t before = tracker.total_allocs();
  Matrix a(4, 4);
  Matrix b(4, 4);
  EXPECT_GE(tracker.total_allocs() - before, 2);
}

}  // namespace
}  // namespace sptx
