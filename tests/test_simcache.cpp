// Tests for the cache simulator (Table 7 substrate).
#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/tensor/matrix.hpp"
#include "src/profiling/simcache.hpp"

namespace sptx {
namespace {

using profiling::CacheConfig;
using profiling::CacheSim;

CacheConfig tiny_cache() {
  CacheConfig cfg;
  cfg.size_bytes = 1024;   // 16 lines
  cfg.line_bytes = 64;
  cfg.associativity = 2;   // 8 sets × 2 ways
  return cfg;
}

TEST(CacheSim, FirstAccessMissesSecondHits) {
  CacheSim cache(tiny_cache());
  cache.access(0, 4);
  EXPECT_EQ(cache.stats().accesses, 1);
  EXPECT_EQ(cache.stats().misses, 1);
  cache.access(0, 4);
  EXPECT_EQ(cache.stats().accesses, 2);
  EXPECT_EQ(cache.stats().misses, 1);
}

TEST(CacheSim, SameLineDifferentOffsetHits) {
  CacheSim cache(tiny_cache());
  cache.access(0, 4);
  cache.access(60, 4);  // same 64B line
  EXPECT_EQ(cache.stats().misses, 1);
}

TEST(CacheSim, MultiLineAccessTouchesAllLines) {
  CacheSim cache(tiny_cache());
  cache.access(0, 256);  // 4 lines
  EXPECT_EQ(cache.stats().accesses, 4);
  EXPECT_EQ(cache.stats().misses, 4);
}

TEST(CacheSim, LruEvictsOldest) {
  // 2-way set: three distinct lines mapping to the same set evict the LRU.
  CacheSim cache(tiny_cache());
  const std::uint64_t stride = 8 * 64;  // same set every 8 lines
  cache.access(0 * stride, 1);          // miss, way 0
  cache.access(1 * stride, 1);          // miss, way 1
  cache.access(0 * stride, 1);          // hit → line 1*stride becomes LRU
  cache.access(2 * stride, 1);          // miss, evicts 1*stride
  cache.access(0 * stride, 1);          // hit (still resident)
  cache.access(1 * stride, 1);          // miss (was evicted)
  EXPECT_EQ(cache.stats().misses, 4);
  EXPECT_EQ(cache.stats().accesses, 6);
}

TEST(CacheSim, SequentialStreamMostlyMissesOncePerLine) {
  CacheSim cache(tiny_cache());
  for (std::uint64_t addr = 0; addr < 64 * 100; addr += 4)
    cache.access(addr, 4);
  EXPECT_EQ(cache.stats().misses, 100);  // one per line
  EXPECT_EQ(cache.stats().accesses, 64 * 100 / 4);
}

TEST(CacheSim, BadConfigThrows) {
  CacheConfig bad;
  bad.size_bytes = 32;
  bad.line_bytes = 64;
  bad.associativity = 2;
  EXPECT_THROW(CacheSim{bad}, Error);
}

TEST(CacheSim, ResetStatsKeepsContents) {
  CacheSim cache(tiny_cache());
  cache.access(0, 4);
  cache.reset_stats();
  cache.access(0, 4);  // still cached → hit
  EXPECT_EQ(cache.stats().accesses, 1);
  EXPECT_EQ(cache.stats().misses, 0);
}

// ---- Table 7 property: SpMM's stream beats the gather/scatter pattern ----

std::vector<Triplet> random_batch(index_t m, index_t n, index_t r,
                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Triplet> batch;
  for (index_t i = 0; i < m; ++i) {
    batch.push_back({static_cast<std::int64_t>(rng.next_below(
                         static_cast<std::uint64_t>(n))),
                     static_cast<std::int64_t>(
                         rng.next_below(static_cast<std::uint64_t>(r))),
                     static_cast<std::int64_t>(rng.next_below(
                         static_cast<std::uint64_t>(n)))});
  }
  return batch;
}

class TraceTest : public ::testing::TestWithParam<int> {};

TEST_P(TraceTest, SpmmMissRateNotWorseThanGatherScatter) {
  const auto batch = random_batch(2000, 5000, 50,
                                  static_cast<std::uint64_t>(GetParam()));
  profiling::TraceLayout layout;
  layout.num_entities = 5000;
  layout.num_relations = 50;
  layout.dim = 64;
  CacheConfig cfg;
  cfg.size_bytes = 256 * 1024;  // embeddings don't fit: realistic pressure
  const auto gather = trace_gather_scatter(batch, layout, cfg);
  const auto spmm = trace_spmm(batch, layout, cfg);
  EXPECT_GT(gather.accesses, 0);
  EXPECT_GT(spmm.accesses, 0);
  // The paper's Table 7: sparse ≤ baseline miss rate (TransE row).
  EXPECT_LE(spmm.miss_rate(), gather.miss_rate() * 1.05);
  // And the SpMM formulation moves fewer bytes overall.
  EXPECT_LT(spmm.accesses, gather.accesses);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceTest, ::testing::Range(0, 4));

TEST(Trace, EmptyBatchProducesNoAccesses) {
  profiling::TraceLayout layout;
  layout.num_entities = 10;
  layout.num_relations = 2;
  const std::vector<Triplet> empty;
  const auto stats = trace_spmm(empty, layout, CacheConfig{});
  EXPECT_EQ(stats.accesses, 0);
}

}  // namespace
}  // namespace sptx
