// Tests for the hardened CLI argument parser (common/cli_args.hpp).
#include <gtest/gtest.h>

#include <array>

#include "src/common/cli_args.hpp"

namespace sptx::cli {
namespace {

Args parse(std::initializer_list<const char*> argv) {
  std::vector<const char*> v(argv);
  return parse_args(static_cast<int>(v.size()), v.data());
}

TEST(CliArgs, ParsesCommandAndOptionPairs) {
  const Args args =
      parse({"sptx", "train", "--model", "TransE", "--epochs", "10"});
  EXPECT_EQ(args.command, "train");
  EXPECT_EQ(args.get("model", ""), "TransE");
  EXPECT_DOUBLE_EQ(args.num("epochs", 0), 10.0);
  EXPECT_FALSE(args.has("dim"));
  EXPECT_DOUBLE_EQ(args.num("dim", 128), 128.0);  // fallback
}

TEST(CliArgs, EmptyArgvYieldsEmptyCommand) {
  EXPECT_EQ(parse({"sptx"}).command, "");
  EXPECT_TRUE(parse({"sptx"}).options.empty());
}

TEST(CliArgs, MissingValueIsAnError) {
  // The old parser silently dropped a trailing flag (for (i; i+1<argc; i+=2)
  // never saw it) — training would run with defaults the user did not ask
  // for. Now it is a hard error naming the option.
  try {
    parse({"sptx", "train", "--epochs"});
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("--epochs"), std::string::npos);
  }
}

TEST(CliArgs, NonOptionTokenIsAnError) {
  EXPECT_THROW(parse({"sptx", "train", "epochs", "10"}), Error);
  EXPECT_THROW(parse({"sptx", "train", "-epochs", "10"}), Error);
  EXPECT_THROW(parse({"sptx", "train", "--", "10"}), Error);
}

TEST(CliArgs, NumRejectsNonNumericValues) {
  const Args args = parse({"sptx", "train", "--epochs", "ten"});
  EXPECT_THROW(args.num("epochs", 0), Error);
  // Negative and fractional values parse fine.
  const Args ok = parse({"sptx", "train", "--margin", "-0.5"});
  EXPECT_DOUBLE_EQ(ok.num("margin", 0), -0.5);
}

TEST(CliArgs, KnownCommandMatchesExactly) {
  constexpr std::array<std::string_view, 3> known = {"train", "eval", "info"};
  EXPECT_TRUE(known_command("train", known));
  EXPECT_FALSE(known_command("Train", known));
  EXPECT_FALSE(known_command("trains", known));
  EXPECT_FALSE(known_command("", known));
}

}  // namespace
}  // namespace sptx::cli
