// Tests for the autograd engine mechanics (graph traversal, accumulation).
#include <gtest/gtest.h>

#include <cmath>

#include "src/autograd/ops.hpp"
#include "src/autograd/variable.hpp"

namespace sptx {
namespace {

using autograd::Variable;

TEST(Autograd, LeafHasNoGradUntilBackward) {
  Variable x = Variable::leaf(Matrix{{1, 2}}, true);
  EXPECT_FALSE(x.has_grad());
}

TEST(Autograd, BackwardThroughSingleOp) {
  Variable x = Variable::leaf(Matrix{{1, 2, 3}}, true);
  Variable loss = autograd::sum_all(x);
  loss.backward();
  for (index_t j = 0; j < 3; ++j) EXPECT_FLOAT_EQ(x.grad().at(0, j), 1.0f);
}

TEST(Autograd, MeanScalesGradient) {
  Variable x = Variable::leaf(Matrix{{2, 4}, {6, 8}}, true);
  autograd::mean_all(x).backward();
  for (index_t i = 0; i < x.grad().size(); ++i)
    EXPECT_FLOAT_EQ(x.grad().data()[i], 0.25f);
}

TEST(Autograd, DiamondGraphAccumulatesBothPaths) {
  // loss = sum(x + x): grad should be 2 everywhere, not 1.
  Variable x = Variable::leaf(Matrix{{1, 1}}, true);
  Variable y = autograd::add(x, x);
  autograd::sum_all(y).backward();
  EXPECT_FLOAT_EQ(x.grad().at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(x.grad().at(0, 1), 2.0f);
}

TEST(Autograd, DeepChainPropagates) {
  Variable x = Variable::leaf(Matrix{{1}}, true);
  Variable y = x;
  for (int i = 0; i < 20; ++i) y = autograd::scale(y, 1.1f);
  autograd::sum_all(y).backward();
  EXPECT_NEAR(x.grad().at(0, 0), std::pow(1.1f, 20), 1e-3f);
}

TEST(Autograd, ConstantsReceiveNoGradient) {
  Variable x = Variable::leaf(Matrix{{1, 2}}, true);
  Variable c = Variable::leaf(Matrix{{5, 5}}, false);
  Variable y = autograd::add(x, c);
  autograd::sum_all(y).backward();
  EXPECT_TRUE(x.has_grad());
  EXPECT_FALSE(c.has_grad());
}

TEST(Autograd, BackwardTwiceAccumulates) {
  Variable x = Variable::leaf(Matrix{{3}}, true);
  Variable loss = autograd::sum_all(autograd::scale(x, 2.0f));
  loss.backward();
  EXPECT_FLOAT_EQ(x.grad().at(0, 0), 2.0f);
  loss.backward();  // no zero_grad in between → accumulate
  EXPECT_FLOAT_EQ(x.grad().at(0, 0), 4.0f);
}

TEST(Autograd, ZeroGradClears) {
  Variable x = Variable::leaf(Matrix{{3}}, true);
  autograd::sum_all(x).backward();
  EXPECT_FLOAT_EQ(x.grad().at(0, 0), 1.0f);
  x.zero_grad();
  EXPECT_FLOAT_EQ(x.grad().at(0, 0), 0.0f);
}

TEST(Autograd, BackwardOnPureConstantGraphThrows) {
  Variable c = Variable::leaf(Matrix{{1}}, false);
  Variable y = autograd::scale(c, 3.0f);
  EXPECT_THROW(y.backward(), Error);
}

TEST(Autograd, SharedSubgraphVisitedOnce) {
  // z = sub(y, y) where y = scale(x, 2): dz/dx = 0. If the engine visited
  // y's backward twice per path incorrectly, the gradient would be wrong.
  Variable x = Variable::leaf(Matrix{{7}}, true);
  Variable y = autograd::scale(x, 2.0f);
  Variable z = autograd::sub(y, y);
  autograd::sum_all(z).backward();
  EXPECT_FLOAT_EQ(x.grad().at(0, 0), 0.0f);
}

TEST(Autograd, WideFanInGraph) {
  // loss = sum over 32 scaled copies of x; gradient = Σ scales.
  Variable x = Variable::leaf(Matrix{{1}}, true);
  Variable acc = autograd::scale(x, 0.0f);
  float expected = 0.0f;
  for (int i = 1; i <= 32; ++i) {
    acc = autograd::add(acc, autograd::scale(x, static_cast<float>(i)));
    expected += static_cast<float>(i);
  }
  autograd::sum_all(acc).backward();
  EXPECT_FLOAT_EQ(x.grad().at(0, 0), expected);
}

TEST(Autograd, GraphOutlivesCallerScopes) {
  // The graph holds shared ownership of intermediates; backward after the
  // construction scope closed must still work.
  Variable x = Variable::leaf(Matrix{{2}}, true);
  Variable loss;
  {
    Variable tmp = autograd::scale(x, 5.0f);
    loss = autograd::sum_all(tmp);
  }
  loss.backward();
  EXPECT_FLOAT_EQ(x.grad().at(0, 0), 5.0f);
}

}  // namespace
}  // namespace sptx
