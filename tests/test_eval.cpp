// Tests for the link-prediction evaluator.
#include <gtest/gtest.h>

#include <cmath>
#include <algorithm>

#include "src/eval/link_prediction.hpp"
#include "src/kg/synthetic.hpp"

namespace sptx {
namespace {

// A deterministic mock model whose score is a fixed function of the
// triplet, letting us compute expected ranks by hand.
class MockModel final : public models::KgeModel {
 public:
  MockModel(index_t n, index_t r, std::function<float(const Triplet&)> fn,
            bool higher_better = false)
      : KgeModel(n, r, {}), fn_(std::move(fn)), higher_(higher_better) {}
  std::string name() const override { return "Mock"; }
  autograd::Variable loss(std::span<const Triplet>,
                          std::span<const Triplet>) override {
    return autograd::Variable::leaf(Matrix(1, 1), false);
  }
  std::vector<float> score(std::span<const Triplet> batch) const override {
    std::vector<float> out(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) out[i] = fn_(batch[i]);
    return out;
  }
  bool higher_is_better() const override { return higher_; }
  std::vector<autograd::Variable> params() override { return {}; }

 private:
  std::function<float(const Triplet&)> fn_;
  bool higher_;
};

kg::Dataset tiny_dataset() {
  kg::Dataset ds;
  ds.name = "tiny";
  ds.train = TripletStore(5, 1, {{0, 0, 1}, {1, 0, 2}});
  ds.valid = TripletStore(5, 1, {});
  ds.test = TripletStore(5, 1, {{2, 0, 3}});
  return ds;
}

TEST(Eval, PerfectModelGetsHitsAtOne) {
  // Distance 0 for the truth, 10 for everything else.
  const kg::Dataset ds = tiny_dataset();
  MockModel model(5, 1, [](const Triplet& t) {
    return (t == Triplet{2, 0, 3}) ? 0.0f : 10.0f;
  });
  eval::EvalConfig cfg;
  cfg.filtered = false;
  const auto metrics = eval::evaluate(model, ds, cfg);
  EXPECT_EQ(metrics.queries, 2);  // head side + tail side
  EXPECT_DOUBLE_EQ(metrics.hits_at_1, 1.0);
  EXPECT_DOUBLE_EQ(metrics.mrr, 1.0);
  EXPECT_DOUBLE_EQ(metrics.mean_rank, 1.0);
}

TEST(Eval, AdversarialModelRanksLast) {
  // Truth gets the WORST distance.
  const kg::Dataset ds = tiny_dataset();
  MockModel model(5, 1, [](const Triplet& t) {
    return (t == Triplet{2, 0, 3}) ? 10.0f : 0.0f;
  });
  eval::EvalConfig cfg;
  cfg.filtered = false;
  const auto metrics = eval::evaluate(model, ds, cfg);
  EXPECT_DOUBLE_EQ(metrics.hits_at_1, 0.0);
  // 5 entities → worst rank 5 on both sides.
  EXPECT_DOUBLE_EQ(metrics.mean_rank, 5.0);
}

TEST(Eval, TiesRankAveraged) {
  // All scores identical: rank = 1 + 0 + (n−1)/2 = 3 for n = 5.
  const kg::Dataset ds = tiny_dataset();
  MockModel model(5, 1, [](const Triplet&) { return 1.0f; });
  eval::EvalConfig cfg;
  cfg.filtered = false;
  const auto metrics = eval::evaluate(model, ds, cfg);
  EXPECT_DOUBLE_EQ(metrics.mean_rank, 3.0);
}

TEST(Eval, FilteringRemovesKnownPositives) {
  // Truth (2,0,3) has distance 1. Candidate (2,0,1) scores better
  // (distance 0) but filtering removes it IF it is a known positive.
  kg::Dataset ds = tiny_dataset();
  ds.train = TripletStore(5, 1, {{2, 0, 1}});
  MockModel model(5, 1, [](const Triplet& t) {
    if (t == Triplet{2, 0, 3}) return 1.0f;
    if (t == Triplet{2, 0, 1}) return 0.0f;
    return 10.0f;
  });
  eval::EvalConfig raw;
  raw.filtered = false;
  raw.corrupt_heads = false;
  eval::EvalConfig filtered;
  filtered.filtered = true;
  filtered.corrupt_heads = false;
  EXPECT_DOUBLE_EQ(eval::evaluate(model, ds, raw).mean_rank, 2.0);
  EXPECT_DOUBLE_EQ(eval::evaluate(model, ds, filtered).mean_rank, 1.0);
}

TEST(Eval, HigherIsBetterModeInvertsRanking) {
  const kg::Dataset ds = tiny_dataset();
  // Similarity model: truth gets the HIGHEST score.
  MockModel model(
      5, 1,
      [](const Triplet& t) { return (t == Triplet{2, 0, 3}) ? 5.0f : 0.0f; },
      /*higher_better=*/true);
  eval::EvalConfig cfg;
  cfg.filtered = false;
  EXPECT_DOUBLE_EQ(eval::evaluate(model, ds, cfg).hits_at_1, 1.0);
}

TEST(Eval, SideSelectionControlsQueryCount) {
  const kg::Dataset ds = tiny_dataset();
  MockModel model(5, 1, [](const Triplet&) { return 0.0f; });
  eval::EvalConfig tails_only;
  tails_only.corrupt_heads = false;
  EXPECT_EQ(eval::evaluate(model, ds, tails_only).queries, 1);
  eval::EvalConfig both;
  EXPECT_EQ(eval::evaluate(model, ds, both).queries, 2);
}

TEST(Eval, MaxQueriesCapsWork) {
  kg::Dataset ds = tiny_dataset();
  ds.test = TripletStore(
      5, 1, {{0, 0, 1}, {1, 0, 2}, {2, 0, 3}, {3, 0, 4}});
  MockModel model(5, 1, [](const Triplet&) { return 0.0f; });
  eval::EvalConfig cfg;
  cfg.corrupt_heads = false;
  cfg.max_queries = 2;
  EXPECT_EQ(eval::evaluate(model, ds, cfg).queries, 2);
}

TEST(Eval, HitsAreMonotone) {
  Rng rng(44);
  kg::Dataset ds = kg::generate({"mono", 50, 4, 400}, rng, 0.0, 0.1);
  MockModel model(50, 4, [](const Triplet& t) {
    // Arbitrary but deterministic pseudo-scores.
    return static_cast<float>((t.head * 7 + t.tail * 13 + t.relation) % 23);
  });
  eval::EvalConfig cfg;
  const auto m = eval::evaluate(model, ds, cfg);
  EXPECT_LE(m.hits_at_1, m.hits_at_3);
  EXPECT_LE(m.hits_at_3, m.hits_at_10);
  EXPECT_GE(m.mean_rank, 1.0);
  EXPECT_LE(m.mrr, 1.0);
}

}  // namespace
}  // namespace sptx
