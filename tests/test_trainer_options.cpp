// Tests for the trainer/optimizer production options: shuffling, weight
// decay, gradient clipping.
#include <gtest/gtest.h>

#include <cmath>

#include "src/autograd/ops.hpp"
#include "src/kg/synthetic.hpp"
#include "src/models/model.hpp"
#include "src/nn/optim.hpp"
#include "src/train/trainer.hpp"

namespace sptx {
namespace {

using autograd::Variable;

kg::Dataset small_ds(std::uint64_t seed = 51) {
  Rng rng(seed);
  return kg::generate({"opt-toy", 50, 4, 400}, rng, 0.0, 0.0);
}

models::ModelConfig cfg16() {
  models::ModelConfig cfg;
  cfg.dim = 16;
  return cfg;
}

TEST(WeightDecay, ShrinksParametersWithZeroGradient) {
  Variable w = Variable::leaf(Matrix{{2.0f, -4.0f}}, true);
  nn::Sgd opt({w}, 0.1f);
  opt.set_weight_decay(0.5f);
  w.grad().zero();  // allocate zero grad so the step runs
  opt.step();
  // w ← (1 − 0.1·0.5)·w = 0.95·w.
  EXPECT_FLOAT_EQ(w.value().at(0, 0), 1.9f);
  EXPECT_FLOAT_EQ(w.value().at(0, 1), -3.8f);
}

TEST(WeightDecay, ZeroLambdaIsExactNoop) {
  Variable w = Variable::leaf(Matrix{{3.0f}}, true);
  nn::Sgd opt({w}, 0.1f);
  opt.set_weight_decay(0.0f);
  w.grad().zero();
  opt.step();
  EXPECT_FLOAT_EQ(w.value().at(0, 0), 3.0f);
}

TEST(GradClip, LargeGradientScaledToMaxNorm) {
  Variable w = Variable::leaf(Matrix{{0.0f, 0.0f}}, true);
  nn::Sgd opt({w}, 1.0f);
  opt.set_grad_clip_norm(1.0f);
  w.grad().at(0, 0) = 3.0f;
  w.grad().at(0, 1) = 4.0f;  // norm 5 → scaled to 1
  opt.step();
  // Update = −lr · clipped grad = −(0.6, 0.8).
  EXPECT_NEAR(w.value().at(0, 0), -0.6f, 1e-5f);
  EXPECT_NEAR(w.value().at(0, 1), -0.8f, 1e-5f);
}

TEST(GradClip, SmallGradientUntouched) {
  Variable w = Variable::leaf(Matrix{{0.0f}}, true);
  nn::Sgd opt({w}, 1.0f);
  opt.set_grad_clip_norm(10.0f);
  w.grad().at(0, 0) = 2.0f;
  opt.step();
  EXPECT_FLOAT_EQ(w.value().at(0, 0), -2.0f);
}

TEST(GradClip, GlobalNormSpansParameters) {
  // Two parameters each with grad norm 3 and 4: global norm 5; clipping to
  // 5 must leave both untouched, clipping to 2.5 halves both.
  Variable a = Variable::leaf(Matrix{{0.0f}}, true);
  Variable b = Variable::leaf(Matrix{{0.0f}}, true);
  nn::Sgd opt({a, b}, 1.0f);
  opt.set_grad_clip_norm(2.5f);
  a.grad().at(0, 0) = 3.0f;
  b.grad().at(0, 0) = 4.0f;
  opt.step();
  EXPECT_NEAR(a.value().at(0, 0), -1.5f, 1e-5f);
  EXPECT_NEAR(b.value().at(0, 0), -2.0f, 1e-5f);
}

TEST(Shuffle, ChangesBatchCompositionButStillConverges) {
  const kg::Dataset ds = small_ds();
  auto run = [&](bool shuffle) {
    Rng mr(7);
    auto model = models::make_sparse_model("TransE", 50, 4, cfg16(), mr);
    train::TrainConfig tc;
    tc.epochs = 10;
    tc.batch_size = 64;
    tc.lr = 0.05f;
    tc.shuffle = shuffle;
    return train::train(*model, ds.train, tc);
  };
  const auto plain = run(false);
  const auto shuffled = run(true);
  // Both converge.
  EXPECT_LT(plain.epoch_loss.back(), plain.epoch_loss.front());
  EXPECT_LT(shuffled.epoch_loss.back(), shuffled.epoch_loss.front());
  // Shuffling changes which pairs share a minibatch, so the per-epoch
  // trajectories differ (first epoch may match before the first shuffle
  // takes effect... our shuffle happens at epoch start, so even epoch 0
  // composition differs).
  bool any_diff = false;
  for (std::size_t e = 0; e < plain.epoch_loss.size(); ++e)
    any_diff = any_diff || plain.epoch_loss[e] != shuffled.epoch_loss[e];
  EXPECT_TRUE(any_diff);
}

TEST(Shuffle, DeterministicGivenSeed) {
  const kg::Dataset ds = small_ds();
  auto run = [&]() {
    Rng mr(8);
    auto model = models::make_sparse_model("TransE", 50, 4, cfg16(), mr);
    train::TrainConfig tc;
    tc.epochs = 5;
    tc.batch_size = 64;
    tc.shuffle = true;
    tc.seed = 99;
    return train::train(*model, ds.train, tc);
  };
  const auto a = run();
  const auto b = run();
  for (std::size_t e = 0; e < a.epoch_loss.size(); ++e)
    EXPECT_FLOAT_EQ(a.epoch_loss[e], b.epoch_loss[e]);
}

TEST(Shuffle, ComposesWithMultiNegative) {
  const kg::Dataset ds = small_ds();
  Rng mr(9);
  auto model = models::make_sparse_model("TransE", 50, 4, cfg16(), mr);
  train::TrainConfig tc;
  tc.epochs = 6;
  tc.batch_size = 64;
  tc.lr = 0.05f;
  tc.shuffle = true;
  tc.negatives_per_positive = 3;
  const auto result = train::train(*model, ds.train, tc);
  EXPECT_LT(result.epoch_loss.back(), result.epoch_loss.front());
}

TEST(TrainerOptions, WeightDecayRegularisesEmbeddingNorms) {
  const kg::Dataset ds = small_ds();
  auto final_norm = [&](float decay) {
    Rng mr(10);
    models::ModelConfig cfg = cfg16();
    cfg.normalize_entities = false;  // decay must do the norm control
    auto model = models::make_sparse_model("TransE", 50, 4, cfg, mr);
    train::TrainConfig tc;
    tc.epochs = 20;
    tc.batch_size = 128;
    tc.lr = 0.1f;
    tc.weight_decay = decay;
    train::train(*model, ds.train, tc);
    return model->params()[0].value().squared_norm();
  };
  EXPECT_LT(final_norm(0.5f), final_norm(0.0f));
}

TEST(TrainerOptions, ClippingKeepsAggressiveLrStable) {
  const kg::Dataset ds = small_ds();
  Rng mr(11);
  auto model = models::make_sparse_model("TransE", 50, 4, cfg16(), mr);
  train::TrainConfig tc;
  tc.epochs = 10;
  tc.batch_size = 64;
  tc.lr = 50.0f;  // would explode unclipped
  tc.grad_clip_norm = 0.01f;
  const auto result = train::train(*model, ds.train, tc);
  for (float l : result.epoch_loss) EXPECT_TRUE(std::isfinite(l));
}

}  // namespace
}  // namespace sptx
