// Tests for the nearest-centroid entity classifier (§4.7.1).
#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/eval/classification.hpp"

namespace sptx {
namespace {

TEST(Classifier, SeparatedClustersClassifyPerfectly) {
  // Two well-separated blobs in 2-D.
  Matrix emb(6, 2);
  // Class 0 near (0, 0); class 1 near (10, 10).
  const float pts[6][2] = {{0.1f, 0.0f},  {-0.1f, 0.2f}, {0.0f, -0.1f},
                           {10.1f, 9.9f}, {9.8f, 10.2f}, {10.0f, 10.0f}};
  for (index_t i = 0; i < 6; ++i) {
    emb.at(i, 0) = pts[i][0];
    emb.at(i, 1) = pts[i][1];
  }
  std::vector<index_t> entities = {0, 1, 2, 3, 4, 5};
  std::vector<index_t> labels = {0, 0, 0, 1, 1, 1};
  eval::CentroidClassifier clf;
  clf.fit(emb, entities, labels, 2);
  EXPECT_DOUBLE_EQ(clf.accuracy(emb, entities, labels), 1.0);
  EXPECT_EQ(clf.predict(emb, 0), 0);
  EXPECT_EQ(clf.predict(emb, 5), 1);
}

TEST(Classifier, CentroidIsClassMean) {
  Matrix emb{{1, 0}, {3, 0}, {0, 5}};
  std::vector<index_t> entities = {0, 1, 2};
  std::vector<index_t> labels = {0, 0, 1};
  eval::CentroidClassifier clf;
  clf.fit(emb, entities, labels, 2);
  EXPECT_FLOAT_EQ(clf.centroids().at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(clf.centroids().at(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(clf.centroids().at(1, 1), 5.0f);
}

TEST(Classifier, UnlabelledClassKeepsZeroCentroid) {
  Matrix emb{{1, 1}, {2, 2}};
  std::vector<index_t> entities = {0, 1};
  std::vector<index_t> labels = {2, 2};  // only class 2 is populated
  eval::CentroidClassifier clf;
  clf.fit(emb, entities, labels, 3);
  EXPECT_FLOAT_EQ(clf.centroids().at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(clf.centroids().at(1, 0), 0.0f);
  EXPECT_EQ(clf.predict(emb, 1), 2);
}

TEST(Classifier, InputValidation) {
  Matrix emb(4, 3);
  eval::CentroidClassifier clf;
  std::vector<index_t> entities = {0, 1};
  std::vector<index_t> short_labels = {0};
  EXPECT_THROW(clf.fit(emb, entities, short_labels, 2), Error);
  std::vector<index_t> bad_label = {0, 7};
  EXPECT_THROW(clf.fit(emb, entities, bad_label, 2), Error);
  std::vector<index_t> bad_entity = {0, 9};
  std::vector<index_t> labels = {0, 1};
  EXPECT_THROW(clf.fit(emb, bad_entity, labels, 2), Error);
  eval::CentroidClassifier unfitted;
  EXPECT_THROW(unfitted.predict(emb, 0), Error);
}

TEST(Classifier, NoisyClustersAboveChance) {
  Rng rng(9);
  const index_t per_class = 100, d = 8, classes = 4;
  Matrix emb(per_class * classes, d);
  std::vector<index_t> entities, labels;
  for (index_t c = 0; c < classes; ++c) {
    for (index_t i = 0; i < per_class; ++i) {
      const index_t e = c * per_class + i;
      for (index_t j = 0; j < d; ++j) {
        const float center = (j == c) ? 2.0f : 0.0f;  // one-hot-ish means
        emb.at(e, j) = center + rng.normal();
      }
      entities.push_back(e);
      labels.push_back(c);
    }
  }
  eval::CentroidClassifier clf;
  clf.fit(emb, entities, labels, classes);
  // Chance is 0.25; separated means should classify most points.
  EXPECT_GT(clf.accuracy(emb, entities, labels), 0.6);
}

}  // namespace
}  // namespace sptx
