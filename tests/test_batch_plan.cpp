// BatchPlan compilation pipeline tests.
//
// The plan/execute split must be invisible to the math: training through
// cached (and prefetched) plans has to reproduce the legacy per-batch
// rebuild path bit-for-bit for every model family, while the profiling
// counters prove the structural claims — zero incidence rebuilds after the
// first epoch of an invariant schedule, full invalidation under shuffle /
// negative resampling, and candidate-plan reuse across repeated
// evaluations. Extends the kernel-equivalence pattern one layer up: instead
// of kernels against a dense reference, whole training runs against the
// reference pipeline.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/eval/link_prediction.hpp"
#include "src/kg/synthetic.hpp"
#include "src/models/model.hpp"
#include "src/profiling/counters.hpp"
#include "src/sparse/incidence.hpp"
#include "src/sparse/plan_cache.hpp"
#include "src/tensor/matrix.hpp"
#include "src/train/batch_plan.hpp"
#include "src/train/trainer.hpp"

namespace sptx {
namespace {

// All six sparse families: transe, transh, transr, toruse, the semiring
// extensions, and the extra translational set.
const std::vector<std::string>& all_models() {
  static const std::vector<std::string> names = {
      "TransE", "TransH", "TransR",  "TorusE",  "TransD", "TransA",
      "TransC", "TransM", "DistMult", "ComplEx", "RotatE",
  };
  return names;
}

kg::Dataset small_dataset(std::uint64_t seed = 77) {
  Rng rng(seed);
  return kg::generate({"plan-toy", 60, 5, 500}, rng, 0.1, 0.0);
}

models::ModelConfig cfg16() {
  models::ModelConfig cfg;
  cfg.dim = 16;
  cfg.rel_dim = 8;
  return cfg;
}

train::TrainConfig base_config() {
  train::TrainConfig tc;
  tc.epochs = 4;
  tc.batch_size = 128;
  tc.lr = 0.05f;
  tc.seed = 11;
  return tc;
}

train::TrainResult run(const std::string& name, const kg::Dataset& ds,
                       const train::TrainConfig& tc) {
  Rng rng(5);
  auto model = models::make_sparse_model(name, ds.num_entities(),
                                         ds.num_relations(), cfg16(), rng);
  return train::train(*model, ds.train, tc);
}

void expect_identical_losses(const train::TrainResult& a,
                             const train::TrainResult& b,
                             const std::string& what) {
  ASSERT_EQ(a.epoch_loss.size(), b.epoch_loss.size()) << what;
  for (std::size_t i = 0; i < a.epoch_loss.size(); ++i) {
    EXPECT_EQ(a.epoch_loss[i], b.epoch_loss[i])
        << what << " diverged at epoch " << i;
  }
}

// ---- Bit-exactness of the compiled pipeline ------------------------------

TEST(BatchPlan, PlannedMatchesLegacyBitExactAllFamilies) {
  const kg::Dataset ds = small_dataset();
  for (const std::string& name : all_models()) {
    train::TrainConfig planned = base_config();
    planned.plan_cache = true;
    planned.prefetch = false;
    train::TrainConfig legacy = planned;
    legacy.plan_cache = false;
    expect_identical_losses(run(name, ds, planned), run(name, ds, legacy),
                            name + " invariant schedule");
  }
}

TEST(BatchPlan, PlannedMatchesLegacyUnderShuffleAndResample) {
  const kg::Dataset ds = small_dataset();
  for (const std::string& name : all_models()) {
    train::TrainConfig planned = base_config();
    planned.shuffle = true;
    planned.resample_negatives = true;
    planned.negatives_per_positive = 2;
    planned.plan_cache = true;
    planned.prefetch = false;
    train::TrainConfig legacy = planned;
    legacy.plan_cache = false;
    expect_identical_losses(run(name, ds, planned), run(name, ds, legacy),
                            name + " shuffled/resampled schedule");
  }
}

TEST(BatchPlan, KTilingInPlanMatchesLegacy) {
  const kg::Dataset ds = small_dataset();
  train::TrainConfig planned = base_config();
  planned.negatives_per_positive = 3;  // epoch-invariant tiling in the plan
  planned.plan_cache = true;
  planned.prefetch = false;
  train::TrainConfig legacy = planned;
  legacy.plan_cache = false;
  for (const std::string& name : {std::string("TransE"), std::string("TransH")})
    expect_identical_losses(run(name, ds, planned), run(name, ds, legacy),
                            name + " k=3 tiling");
}

TEST(BatchPlan, PrefetchOnOffBitExact) {
  const kg::Dataset ds = small_dataset();
  for (const std::string& name :
       {std::string("TransE"), std::string("TransR"), std::string("ComplEx")}) {
    train::TrainConfig on = base_config();
    on.shuffle = true;
    on.resample_negatives = true;
    on.plan_cache = true;
    on.prefetch = true;
    train::TrainConfig off = on;
    off.prefetch = false;
    expect_identical_losses(run(name, ds, on), run(name, ds, off),
                            name + " prefetch on/off");
  }
}

// ---- Cache behaviour: the structural claims ------------------------------

TEST(BatchPlan, InvariantScheduleRebuildsNothingAfterFirstEpoch) {
  const kg::Dataset ds = small_dataset();
  for (const std::string& name :
       {std::string("TransE"), std::string("TransH"), std::string("TransD")}) {
    train::TrainConfig one = base_config();
    one.epochs = 1;
    one.prefetch = false;
    train::TrainConfig many = one;
    many.epochs = 5;
    const auto r1 = run(name, ds, one);
    const auto r5 = run(name, ds, many);
    EXPECT_GT(r1.incidence_builds, 0) << name;
    // Epochs >= 2 perform ZERO incidence rebuilds: five epochs build
    // exactly what one epoch builds.
    EXPECT_EQ(r5.incidence_builds, r1.incidence_builds) << name;
    // Every batch after epoch 0 is a cache hit (pos + neg per batch).
    const std::int64_t batches = r1.plan_stats.misses / 2;
    EXPECT_GT(batches, 1) << name;
    EXPECT_EQ(r5.plan_stats.misses, 2 * batches) << name;
    EXPECT_EQ(r5.plan_stats.hits, 2 * batches * 4) << name;
    EXPECT_EQ(r5.plan_stats.invalidations, 0) << name;
  }
}

TEST(BatchPlan, ShuffleInvalidatesEveryEpoch) {
  const kg::Dataset ds = small_dataset();
  train::TrainConfig tc = base_config();
  tc.epochs = 3;
  tc.shuffle = true;
  tc.prefetch = false;
  const auto r = run("TransE", ds, tc);
  EXPECT_EQ(r.plan_stats.hits, 0);
  EXPECT_EQ(r.plan_stats.invalidations, tc.epochs - 1);
  // Every epoch rebuilds its incidence: builds scale with epoch count.
  train::TrainConfig one = tc;
  one.epochs = 1;
  const auto r1 = run("TransE", ds, one);
  EXPECT_EQ(r.incidence_builds, 3 * r1.incidence_builds);
}

TEST(BatchPlan, ResampleInvalidatesEveryEpoch) {
  const kg::Dataset ds = small_dataset();
  train::TrainConfig tc = base_config();
  tc.epochs = 3;
  tc.resample_negatives = true;
  tc.prefetch = false;
  const auto r = run("TransE", ds, tc);
  EXPECT_EQ(r.plan_stats.hits, 0);
  EXPECT_EQ(r.plan_stats.invalidations, tc.epochs - 1);
}

// ---- CompiledBatch against the direct builders ---------------------------

TEST(BatchPlan, CompiledBatchMatchesDirectBuilders) {
  Rng rng(3);
  const index_t n = 40, r = 6;
  std::vector<Triplet> batch;
  for (int i = 0; i < 50; ++i) {
    batch.push_back({static_cast<std::int64_t>(rng.next_below(n)),
                     static_cast<std::int64_t>(rng.next_below(r)),
                     static_cast<std::int64_t>(rng.next_below(n))});
  }
  sparse::ScoringRecipe recipe;
  recipe.hrt = recipe.ht = recipe.relation_selection = true;
  recipe.head_selection = recipe.tail_selection = true;
  recipe.relation_indices = true;
  const auto plan =
      sparse::CompiledBatch::compile(batch, recipe, n, r, /*copy=*/true);

  EXPECT_EQ(max_abs_diff(to_dense(*plan->hrt()),
                         to_dense(build_hrt_incidence_csr(batch, n, r))),
            0.0f);
  EXPECT_EQ(max_abs_diff(to_dense(*plan->ht()),
                         to_dense(build_ht_incidence_csr(batch, n))),
            0.0f);
  EXPECT_EQ(max_abs_diff(to_dense(*plan->relation_selection()),
                         to_dense(build_relation_selection_csr(batch, r))),
            0.0f);
  EXPECT_EQ(max_abs_diff(
                to_dense(*plan->head_selection()),
                to_dense(build_entity_selection_csr(batch, n,
                                                    TripletSlot::kHead))),
            0.0f);
  EXPECT_EQ(max_abs_diff(
                to_dense(*plan->tail_selection()),
                to_dense(build_entity_selection_csr(batch, n,
                                                    TripletSlot::kTail))),
            0.0f);
  ASSERT_EQ(plan->relation_indices()->size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i)
    EXPECT_EQ((*plan->relation_indices())[i], batch[i].relation);
}

TEST(BatchPlan, ForwardOverPlanMatchesSpanDistance) {
  const kg::Dataset ds = small_dataset();
  for (const std::string& name : all_models()) {
    Rng rng(9);
    auto model = models::make_sparse_model(name, ds.num_entities(),
                                           ds.num_relations(), cfg16(), rng);
    auto* scoring = dynamic_cast<models::ScoringCoreModel*>(model.get());
    ASSERT_NE(scoring, nullptr) << name;
    const auto batch = ds.train.slice(0, 64);
    const auto plan = sparse::CompiledBatch::compile(
        batch, scoring->recipe(), ds.num_entities(), ds.num_relations(),
        /*copy=*/false);
    // run_forward on both sides: the span path and the plan path must agree
    // bit-exact under whichever dispatch (fused or autograd) SPTX_FUSED
    // selects — the property this test guards is plan-vs-span equivalence,
    // not the dispatch itself (test_fused_kernels covers that).
    const Matrix direct = scoring->distance(batch).value();
    const Matrix planned = scoring->run_forward(*plan).value();
    EXPECT_EQ(max_abs_diff(direct, planned), 0.0f) << name;
  }
}

// ---- Plan cache primitives ----------------------------------------------

TEST(BatchPlan, PlanCacheHitMissInvalidate) {
  Rng rng(4);
  std::vector<Triplet> batch;
  for (int i = 0; i < 10; ++i)
    batch.push_back({static_cast<std::int64_t>(rng.next_below(20)), 0,
                     static_cast<std::int64_t>(rng.next_below(20))});
  sparse::ScoringRecipe recipe;
  recipe.hrt = true;
  sparse::PlanCache cache;
  EXPECT_EQ(cache.find(1), nullptr);
  const auto p1 = cache.get_or_compile(1, batch, recipe, 20, 1, true);
  ASSERT_NE(p1, nullptr);
  EXPECT_EQ(cache.get_or_compile(1, batch, recipe, 20, 1, true).get(),
            p1.get());
  auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 2);  // the probe find() + the first get_or_compile
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.entries, 1);
  cache.invalidate();
  stats = cache.stats();
  EXPECT_EQ(stats.entries, 0);
  EXPECT_EQ(stats.invalidations, 1);
  EXPECT_EQ(cache.find(1), nullptr);
  // p1 outlives eviction — plans are shared, not owned by the cache.
  EXPECT_EQ(p1->triplets().size(), batch.size());
}

// ---- Eval plumbing -------------------------------------------------------

TEST(BatchPlan, EvalReusesCandidatePlansAcrossEvaluations) {
  Rng rng(21);
  kg::Dataset ds = kg::generate({"eval-toy", 30, 4, 200}, rng, 0.0, 0.2);
  Rng mr(2);
  auto model = models::make_sparse_model("TransE", ds.num_entities(),
                                         ds.num_relations(), cfg16(), mr);

  eval::EvalConfig plain;
  const auto reference = eval::evaluate(*model, ds, plain);

  sparse::PlanCache cache;
  eval::EvalConfig cached = plain;
  cached.plan_cache = &cache;
  const auto first = eval::evaluate(*model, ds, cached);
  const auto miss_count = cache.stats().misses;
  const auto second = eval::evaluate(*model, ds, cached);

  // Metrics identical with and without the cache, across repeated passes.
  EXPECT_EQ(first.mrr, reference.mrr);
  EXPECT_EQ(second.mrr, reference.mrr);
  EXPECT_EQ(first.hits_at_10, reference.hits_at_10);
  EXPECT_EQ(second.queries, reference.queries);

  // Two sides per query; the second pass is served entirely from plans.
  const std::int64_t sides = 2 * ds.test.size();
  EXPECT_EQ(miss_count, sides);
  EXPECT_EQ(cache.stats().hits, sides);
  EXPECT_EQ(cache.stats().entries, sides);
}

}  // namespace
}  // namespace sptx
