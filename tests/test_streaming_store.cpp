// Tests for the disk-backed streaming triplet store (§4.7.2).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/common/error.hpp"
#include "src/common/fault.hpp"
#include "src/kg/streaming_store.hpp"
#include "src/kg/synthetic.hpp"

namespace sptx {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(StreamingStore, WriteOpenRoundTrip) {
  Rng rng(1);
  const kg::Dataset ds = kg::generate({"stream", 40, 3, 200}, rng, 0.0, 0.0);
  const std::string path = temp_path("stream_rt.sptxs");
  kg::StreamingTripletStore::write_file(path, ds.train.triplets(),
                                        ds.num_entities(),
                                        ds.num_relations());
  auto store = kg::StreamingTripletStore::open(path);
  EXPECT_EQ(store.size(), ds.train.size());
  EXPECT_EQ(store.num_entities(), 40);
  EXPECT_EQ(store.num_relations(), 3);
  for (std::int64_t i = 0; i < store.size(); ++i)
    EXPECT_EQ(store.slice(i, 1)[0], ds.train[i]);
  std::remove(path.c_str());
}

TEST(StreamingStore, SlicesAreZeroCopyViews) {
  Rng rng(2);
  const kg::Dataset ds = kg::generate({"zc", 30, 2, 100}, rng, 0.0, 0.0);
  const std::string path = temp_path("stream_zc.sptxs");
  kg::StreamingTripletStore::write_file(path, ds.train.triplets(), 30, 2);
  auto store = kg::StreamingTripletStore::open(path);
  const auto a = store.slice(0, 50);
  const auto b = store.slice(25, 50);
  // Overlapping views share the same underlying mapping.
  EXPECT_EQ(a.data() + 25, b.data());
  std::remove(path.c_str());
}

TEST(StreamingStore, ToMemoryMatches) {
  Rng rng(3);
  const kg::Dataset ds = kg::generate({"mem", 25, 2, 80}, rng, 0.0, 0.0);
  const std::string path = temp_path("stream_mem.sptxs");
  kg::StreamingTripletStore::write_file(path, ds.train.triplets(), 25, 2);
  auto store = kg::StreamingTripletStore::open(path);
  const TripletStore memory = store.to_memory();
  ASSERT_EQ(memory.size(), ds.train.size());
  for (std::int64_t i = 0; i < memory.size(); ++i)
    EXPECT_EQ(memory[i], ds.train[i]);
  std::remove(path.c_str());
}

TEST(StreamingStore, SliceOutOfRangeThrows) {
  const std::string path = temp_path("stream_oob.sptxs");
  std::vector<Triplet> t = {{0, 0, 1}};
  kg::StreamingTripletStore::write_file(path, t, 2, 1);
  auto store = kg::StreamingTripletStore::open(path);
  EXPECT_THROW(store.slice(0, 2), Error);
  EXPECT_THROW(store.slice(-1, 1), Error);
  std::remove(path.c_str());
}

TEST(StreamingStore, GarbageFileRejected) {
  const std::string path = temp_path("stream_bad.sptxs");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    const char junk[64] = "this is not a streaming triplet store at all!!";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
  }
  EXPECT_THROW(kg::StreamingTripletStore::open(path), Error);
  std::remove(path.c_str());
}

TEST(StreamingStore, MissingFileThrows) {
  EXPECT_THROW(kg::StreamingTripletStore::open(temp_path("nope.sptxs")),
               Error);
}

TEST(StreamingStore, MoveAssignmentReleasesOverwrittenMapping) {
  // Regression: move assignment was deleted, so stores couldn't live in
  // resizable containers (per-worker shard views need exactly that). The
  // implemented assignment must unmap/close the overwritten store — looping
  // far past the fd limit proves the old descriptor is released each time.
  Rng rng(4);
  const kg::Dataset ds = kg::generate({"mv", 20, 2, 50}, rng, 0.0, 0.0);
  const std::string path = temp_path("stream_mv.sptxs");
  kg::StreamingTripletStore::write_file(path, ds.train.triplets(), 20, 2);
  auto store = kg::StreamingTripletStore::open(path);
  for (int i = 0; i < 4096; ++i)  // default RLIMIT_NOFILE is 1024
    store = kg::StreamingTripletStore::open(path);
  EXPECT_EQ(store.size(), ds.train.size());
  EXPECT_EQ(store.slice(0, 1)[0], ds.train[0]);
  std::remove(path.c_str());
}

TEST(StreamingStore, StoresLiveInResizableContainers) {
  Rng rng(5);
  const kg::Dataset a = kg::generate({"vecA", 15, 2, 40}, rng, 0.0, 0.0);
  const kg::Dataset b = kg::generate({"vecB", 25, 3, 60}, rng, 0.0, 0.0);
  const std::string pa = temp_path("stream_vec_a.sptxs");
  const std::string pb = temp_path("stream_vec_b.sptxs");
  kg::StreamingTripletStore::write_file(pa, a.train.triplets(), 15, 2);
  kg::StreamingTripletStore::write_file(pb, b.train.triplets(), 25, 3);

  std::vector<kg::StreamingTripletStore> shards;
  shards.push_back(kg::StreamingTripletStore::open(pa));
  shards.push_back(kg::StreamingTripletStore::open(pb));
  shards.erase(shards.begin());  // shifts via move assignment
  ASSERT_EQ(shards.size(), 1u);
  EXPECT_EQ(shards[0].size(), b.train.size());
  EXPECT_EQ(shards[0].num_entities(), 25);
  EXPECT_EQ(shards[0].slice(0, 1)[0], b.train[0]);
  std::remove(pa.c_str());
  std::remove(pb.c_str());
}

TEST(StreamingStore, EmptyStoreIsValid) {
  const std::string path = temp_path("stream_empty.sptxs");
  kg::StreamingTripletStore::write_file(path, {}, 5, 2);
  auto store = kg::StreamingTripletStore::open(path);
  EXPECT_EQ(store.size(), 0);
  EXPECT_EQ(store.slice(0, 0).size(), 0u);
  std::remove(path.c_str());
}

// ---- file validation & fault injection -------------------------------------

/// A valid store file to corrupt, returned as its raw bytes.
std::string valid_store_bytes(const std::string& path) {
  std::vector<Triplet> t = {{0, 0, 1}, {1, 1, 2}, {2, 0, 0}};
  kg::StreamingTripletStore::write_file(path, t, 3, 2);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  std::string bytes;
  char buf[256];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  std::fclose(f);
  return bytes;
}

void write_raw(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
}

TEST(StreamingStoreValidation, ZeroLengthFileRejectedTyped) {
  const std::string path = temp_path("stream_zero.sptxs");
  std::fclose(std::fopen(path.c_str(), "wb"));  // 0 bytes on disk
  try {
    kg::StreamingTripletStore::open(path);
    FAIL() << "a zero-length file must be rejected";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDataFormat);
  }
  std::remove(path.c_str());
}

TEST(StreamingStoreValidation, TruncatedPayloadRejectedTyped) {
  const std::string path = temp_path("stream_trunc.sptxs");
  const std::string bytes = valid_store_bytes(path);
  // The header promises 3 records; deliver 7 bytes less than that.
  write_raw(path, bytes.substr(0, bytes.size() - 7));
  try {
    kg::StreamingTripletStore::open(path);
    FAIL() << "a truncated store must be rejected";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDataFormat);
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(StreamingStoreValidation, RaggedTrailingBytesRejectedTyped) {
  const std::string path = temp_path("stream_ragged.sptxs");
  std::string bytes = valid_store_bytes(path);
  bytes.append("extra", 5);  // not a whole record
  write_raw(path, bytes);
  try {
    kg::StreamingTripletStore::open(path);
    FAIL() << "trailing partial records must be rejected";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDataFormat);
    EXPECT_NE(std::string(e.what()).find("trailing"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(StreamingStoreValidation, InjectedMmapFaultSurfacesTyped) {
  const std::string path = temp_path("stream_fault.sptxs");
  valid_store_bytes(path);

  // Fault on open.
  fault::install("mmap_read:fail_once@1");
  try {
    kg::StreamingTripletStore::open(path);
    fault::clear();
    FAIL() << "the injected open fault must surface";
  } catch (const Error& e) {
    fault::clear();
    EXPECT_EQ(e.code(), ErrorCode::kFaultInjected);
  }

  // Fault on a read: open consumes hit 1, the slice consumes hit 2.
  fault::install("mmap_read:fail@2");
  auto store = kg::StreamingTripletStore::open(path);
  try {
    store.slice(0, 1);
    fault::clear();
    FAIL() << "the injected read fault must surface";
  } catch (const Error& e) {
    fault::clear();
    EXPECT_EQ(e.code(), ErrorCode::kFaultInjected);
  }
  // With the harness cleared the same store serves reads again.
  EXPECT_EQ(store.slice(0, 1).size(), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sptx
