// Workspace buffer-pool tests, including the PR's acceptance property: in
// steady-state training the hot loop performs zero heap allocations —
// MemoryTracker::total_allocs() stays flat across epochs once the first
// batch has warmed the pool.
#include <gtest/gtest.h>

#include <cstdint>

#include "src/kg/synthetic.hpp"
#include "src/models/model.hpp"
#include "src/tensor/matrix.hpp"
#include "src/tensor/memory_tracker.hpp"
#include "src/tensor/workspace.hpp"
#include "src/train/trainer.hpp"

namespace sptx {
namespace {

TEST(Workspace, DisabledByDefaultEveryAllocationHitsTheAllocator) {
  auto& tracker = MemoryTracker::instance();
  const std::int64_t before = tracker.total_allocs();
  const std::int64_t live = tracker.current();
  {
    Matrix a(8, 8);
  }
  {
    Matrix b(8, 8);
  }
  EXPECT_EQ(tracker.total_allocs() - before, 2);
  EXPECT_EQ(tracker.current(), live);  // frees really freed
}

TEST(Workspace, ScopeRecyclesSameCapacityBuffers) {
  auto& tracker = MemoryTracker::instance();
  const std::int64_t live_before = tracker.current();
  {
    ScopedWorkspace ws;
    const std::int64_t before = tracker.total_allocs();
    { Matrix a(16, 16); }
    { Matrix b(16, 16); }  // same capacity: served from the pool
    { Matrix c(16, 16); }
    EXPECT_EQ(tracker.total_allocs() - before, 1);
  }
  // Drain returned the pooled buffer to the OS and the tracker.
  EXPECT_EQ(tracker.current(), live_before);
}

TEST(Workspace, DifferentShapesWithSamePaddedCapacityShareBuffers) {
  ScopedWorkspace ws;
  auto& tracker = MemoryTracker::instance();
  const std::int64_t before = tracker.total_allocs();
  { Matrix a(3, 5); }  // 60 B → padded 64
  { Matrix b(4, 4); }  // 64 B → padded 64: reuses a's buffer
  EXPECT_EQ(tracker.total_allocs() - before, 1);
}

TEST(Workspace, PooledBuffersCountAsLiveUntilDrain) {
  auto& tracker = MemoryTracker::instance();
  const std::int64_t live_before = tracker.current();
  {
    ScopedWorkspace ws;
    { Matrix a(32, 32); }
    // Released into the pool, not to the OS: still tracked as live.
    EXPECT_EQ(tracker.current() - live_before,
              static_cast<std::int64_t>(32 * 32 * sizeof(float)));
    const auto stats = Workspace::instance().stats();
    EXPECT_GE(stats.cached_buffers, 1);
  }
  EXPECT_EQ(tracker.current(), live_before);
}

TEST(Workspace, AllBuffersFreshAndRecycledAre64ByteAligned) {
  // The fused kernels and the SpMM engine assume cache-line/AVX alignment
  // of every Matrix base pointer — including buffers that went through the
  // pool. Odd shapes force several padded size classes.
  const auto aligned = [](const float* p) {
    return reinterpret_cast<std::uintptr_t>(p) % 64 == 0;
  };
  ScopedWorkspace ws;
  for (index_t rows : {1, 3, 7, 32}) {
    for (index_t cols : {1, 5, 12, 17, 128}) {
      const Matrix fresh(rows, cols);
      EXPECT_TRUE(aligned(fresh.data())) << rows << "x" << cols;
    }
  }
  // Recycled path: the second allocation of a size class comes from the
  // pool and must preserve the alignment of the original allocation.
  { Matrix warm(9, 33); }
  Matrix recycled(9, 33);
  EXPECT_TRUE(aligned(recycled.data()));
  EXPECT_GE(Workspace::instance().stats().hits, 1);
}

TEST(Workspace, NestedScopesDrainOnlyAtOutermostExit) {
  auto& tracker = MemoryTracker::instance();
  const std::int64_t live_before = tracker.current();
  {
    ScopedWorkspace outer;
    {
      ScopedWorkspace inner;
      { Matrix a(8, 8); }
    }
    // Inner exit must not drain: the buffer is still pooled.
    EXPECT_GT(tracker.current(), live_before);
    const std::int64_t before = tracker.total_allocs();
    { Matrix b(8, 8); }
    EXPECT_EQ(tracker.total_allocs(), before);  // pool hit
  }
  EXPECT_EQ(tracker.current(), live_before);
}

// The acceptance property: zero per-batch heap-allocation growth in
// steady-state training, for both the plain-SGD sparse path and a model
// with projections (TransR exercises relation_project's scratch tensors).
TEST(Workspace, SteadyStateTrainingPerformsZeroAllocations) {
  Rng rng(5);
  kg::Dataset ds = kg::generate({"ws", 120, 6, 1200}, rng, 0.0, 0.0);
  for (const char* name : {"TransE", "TransR"}) {
    models::ModelConfig cfg;
    cfg.dim = 16;
    cfg.rel_dim = 8;
    Rng mr(6);
    auto model = models::make_sparse_model(name, ds.num_entities(),
                                           ds.num_relations(), cfg, mr);
    train::TrainConfig tc;
    tc.epochs = 4;
    tc.batch_size = 256;
    std::vector<std::int64_t> allocs_per_epoch;
    train::train(*model, ds.train, tc, [&](int, float) {
      allocs_per_epoch.push_back(MemoryTracker::instance().total_allocs());
    });
    ASSERT_EQ(allocs_per_epoch.size(), 4u);
    // Epoch 0 warms the pool (first batch); from then on: dead flat.
    EXPECT_EQ(allocs_per_epoch[1], allocs_per_epoch[0]) << name;
    EXPECT_EQ(allocs_per_epoch[2], allocs_per_epoch[1]) << name;
    EXPECT_EQ(allocs_per_epoch[3], allocs_per_epoch[2]) << name;
  }
}

TEST(Workspace, AdagradTrainingIsAlsoAllocationFree) {
  Rng rng(9);
  kg::Dataset ds = kg::generate({"wsa", 80, 4, 800}, rng, 0.0, 0.0);
  models::ModelConfig cfg;
  cfg.dim = 12;
  Rng mr(10);
  auto model = models::make_sparse_model("TransE", ds.num_entities(),
                                         ds.num_relations(), cfg, mr);
  train::TrainConfig tc;
  tc.epochs = 3;
  tc.batch_size = 128;
  tc.use_adagrad = true;
  std::vector<std::int64_t> allocs;
  train::train(*model, ds.train, tc, [&](int, float) {
    allocs.push_back(MemoryTracker::instance().total_allocs());
  });
  ASSERT_EQ(allocs.size(), 3u);
  EXPECT_EQ(allocs[2], allocs[1]);
}

}  // namespace
}  // namespace sptx
