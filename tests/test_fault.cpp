// Tests for the deterministic fault-injection harness (common/fault.hpp):
// spec parsing, the per-mode firing rules, determinism of the eio decision,
// context matching for die rules, and the typed error the sites throw.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/error.hpp"
#include "src/common/fault.hpp"

namespace sptx {
namespace {

/// Every test leaves the process-global harness clean.
struct FaultGuard {
  ~FaultGuard() { fault::clear(); }
};

TEST(Fault, InactiveByDefaultAndAfterClear) {
  FaultGuard guard;
  fault::clear();
  EXPECT_FALSE(fault::active());
  EXPECT_EQ(fault::spec(), "");
  EXPECT_FALSE(fault::should_fail("checkpoint_write"));
  EXPECT_NO_THROW(fault::maybe_fail("anything"));
}

TEST(Fault, MalformedSpecsRejected) {
  FaultGuard guard;
  EXPECT_THROW(fault::install("nocolon"), Error);
  EXPECT_THROW(fault::install(":fail"), Error);
  EXPECT_THROW(fault::install("site:unknown_mode"), Error);
  EXPECT_THROW(fault::install("site:fail@zero"), Error);
  EXPECT_THROW(fault::install("site:fail@0"), Error);     // hits are 1-based
  EXPECT_THROW(fault::install("site:eio"), Error);        // needs @P
  EXPECT_THROW(fault::install("site:eio@1.5"), Error);    // P outside [0,1]
  EXPECT_THROW(fault::install("site:die"), Error);        // needs @A
  // A failed install never leaves a half-built harness behind.
  EXPECT_THROW(fault::install("a:fail_once,b:bogus"), Error);
}

TEST(Fault, FailOnceFiresExactlyOnceAtTheNthHit) {
  FaultGuard guard;
  fault::install("s:fail_once@3");
  EXPECT_TRUE(fault::active());
  EXPECT_EQ(fault::spec(), "s:fail_once@3");
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(fault::should_fail("s"));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false,
                                      false}));
}

TEST(Fault, FailFiresFromTheNthHitOn) {
  FaultGuard guard;
  fault::install("s:fail@2");
  EXPECT_FALSE(fault::should_fail("s"));
  EXPECT_TRUE(fault::should_fail("s"));
  EXPECT_TRUE(fault::should_fail("s"));
}

TEST(Fault, SitesAreIndependent) {
  FaultGuard guard;
  fault::install("a:fail@1,b:fail_once@2");
  EXPECT_FALSE(fault::should_fail("c"));  // unknown site never fires
  EXPECT_TRUE(fault::should_fail("a"));
  EXPECT_FALSE(fault::should_fail("b"));
  EXPECT_TRUE(fault::should_fail("b"));
}

TEST(Fault, EioIsDeterministicPerSeedAndHit) {
  FaultGuard guard;
  const auto run = [](std::uint64_t seed) {
    fault::install("s:eio@0.3", seed);
    std::vector<bool> out;
    for (int i = 0; i < 64; ++i) out.push_back(fault::should_fail("s"));
    return out;
  };
  const auto a = run(7), b = run(7), c = run(8);
  EXPECT_EQ(a, b);  // same seed → identical fault pattern
  EXPECT_NE(a, c);  // different seed → different pattern
  int fires = 0;
  for (bool f : a) fires += f ? 1 : 0;
  EXPECT_GT(fires, 0);   // p=0.3 over 64 hits: some fire…
  EXPECT_LT(fires, 64);  // …but not all
}

TEST(Fault, EioExtremesNeverAndAlways) {
  FaultGuard guard;
  fault::install("s:eio@0");
  for (int i = 0; i < 32; ++i) EXPECT_FALSE(fault::should_fail("s"));
  fault::install("s:eio@1");
  for (int i = 0; i < 32; ++i) EXPECT_TRUE(fault::should_fail("s"));
}

TEST(Fault, DieMatchesContext) {
  FaultGuard guard;
  fault::install("w:die@2:1");
  EXPECT_FALSE(fault::should_fail("w", 1, 1));  // wrong epoch
  EXPECT_FALSE(fault::should_fail("w", 2, 0));  // wrong worker
  EXPECT_FALSE(fault::should_fail("w"));        // no context at all
  EXPECT_TRUE(fault::should_fail("w", 2, 1));
  // ctx_b omitted in the rule matches any worker.
  fault::install("w:die@3");
  EXPECT_TRUE(fault::should_fail("w", 3, 0));
  EXPECT_TRUE(fault::should_fail("w", 3, 5));
  EXPECT_FALSE(fault::should_fail("w", 4, 3));
}

TEST(Fault, MaybeFailThrowsTypedError) {
  FaultGuard guard;
  fault::install("s:fail@1");
  try {
    fault::maybe_fail("s");
    FAIL() << "expected an injected fault";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kFaultInjected);
    EXPECT_NE(std::string(e.what()).find("s"), std::string::npos);
  }
}

TEST(Fault, ReinstallResetsCounters) {
  FaultGuard guard;
  fault::install("s:fail_once@1");
  EXPECT_TRUE(fault::should_fail("s"));
  EXPECT_FALSE(fault::should_fail("s"));  // consumed
  fault::install("s:fail_once@1");        // fresh counters
  EXPECT_TRUE(fault::should_fail("s"));
}

}  // namespace
}  // namespace sptx
