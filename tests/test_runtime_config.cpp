// Tests for the typed runtime-config registry (common/runtime_config.hpp):
// the spec table, env snapshotting, programmatic overrides with validation,
// tri-state fallbacks, JSON dump, and the process-wide install hook.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>

#include "src/common/error.hpp"
#include "src/common/runtime_config.hpp"

namespace sptx {
namespace {

/// Restores the pristine env-derived process snapshot on scope exit so
/// install() tests cannot leak state into other suites.
struct SnapshotGuard {
  ~SnapshotGuard() { config::install(RuntimeConfig::from_env()); }
};

TEST(RuntimeConfigSpecs, TableIsSane) {
  std::set<std::string> names;
  for (const ConfigSpec& spec : RuntimeConfig::specs()) {
    EXPECT_TRUE(std::string(spec.name).starts_with("SPTX_")) << spec.name;
    EXPECT_FALSE(spec.doc.empty()) << spec.name << " needs a doc string";
    EXPECT_TRUE(names.insert(std::string(spec.name)).second)
        << "duplicate knob " << spec.name;
    if (spec.type == ConfigType::kEnum)
      EXPECT_FALSE(spec.choices.empty()) << spec.name << " needs choices";
    else
      EXPECT_TRUE(spec.choices.empty()) << spec.name;
    // A non-empty default must itself validate: a snapshot of a clean
    // environment is usable with no special cases.
    if (!spec.default_value.empty()) {
      RuntimeConfig rc;
      EXPECT_NO_THROW(rc.set(spec.name, spec.default_value)) << spec.name;
    }
  }
  EXPECT_TRUE(names.count("SPTX_SPMM_KERNEL"));
  EXPECT_TRUE(names.count("SPTX_PLAN_CACHE"));
  EXPECT_TRUE(names.count("SPTX_DDP_WORKERS"));
  EXPECT_TRUE(names.count("SPTX_SERVE_MICROBATCH"));
}

TEST(RuntimeConfigFlags, ParsingIsCaseInsensitive) {
  for (const char* off : {"0", "off", "OFF", "Off", "false", "FALSE", "no",
                          "No"})
    EXPECT_FALSE(parse_flag(off, true)) << off;
  for (const char* on : {"1", "on", "ON", "true", "TRUE", "yes", "anything"})
    EXPECT_TRUE(parse_flag(on, false)) << on;
  EXPECT_TRUE(parse_flag("", true));    // empty keeps the fallback
  EXPECT_FALSE(parse_flag("", false));
}

TEST(RuntimeConfig, TriStateKnobsKeepTheCallersFallback) {
  const RuntimeConfig rc;  // defaults only
  EXPECT_FALSE(rc.is_set("SPTX_PLAN_CACHE"));
  EXPECT_TRUE(rc.flag_or("SPTX_PLAN_CACHE", true));
  EXPECT_FALSE(rc.flag_or("SPTX_PLAN_CACHE", false));
  EXPECT_EQ(rc.int_or("SPTX_DDP_WORKERS", 7), 7);
  // Knobs with real defaults resolve to them.
  EXPECT_FALSE(rc.flag_or("SPTX_NO_SIMD", true));
  EXPECT_DOUBLE_EQ(rc.double_or("SPTX_SCALE", 0.5), 0.01);
  EXPECT_EQ(rc.value_or("SPTX_SPMM_KERNEL", "x"), "auto");
}

TEST(RuntimeConfig, FromEnvSnapshotsCurrentEnvironment) {
  ::setenv("SPTX_DDP_WORKERS", "8", 1);
  ::setenv("SPTX_PLAN_CACHE", "OFF", 1);  // case-insensitive flag
  const RuntimeConfig rc = RuntimeConfig::from_env();
  ::unsetenv("SPTX_DDP_WORKERS");
  ::unsetenv("SPTX_PLAN_CACHE");
  // The snapshot holds what the environment said at from_env() time...
  EXPECT_EQ(rc.int_or("SPTX_DDP_WORKERS", 1), 8);
  EXPECT_EQ(rc.origin("SPTX_DDP_WORKERS"), ConfigOrigin::kEnvironment);
  EXPECT_FALSE(rc.flag_or("SPTX_PLAN_CACHE", true));
  // ...and a later snapshot no longer sees the unset variables.
  const RuntimeConfig later = RuntimeConfig::from_env();
  EXPECT_FALSE(later.is_set("SPTX_DDP_WORKERS"));
}

TEST(RuntimeConfig, MalformedEnvironmentValuesAreIgnored) {
  ::setenv("SPTX_DDP_WORKERS", "not-a-number", 1);
  ::setenv("SPTX_SPMM_KERNEL", "not-a-kernel", 1);
  const RuntimeConfig rc = RuntimeConfig::from_env();
  ::unsetenv("SPTX_DDP_WORKERS");
  ::unsetenv("SPTX_SPMM_KERNEL");
  EXPECT_FALSE(rc.is_set("SPTX_DDP_WORKERS"));
  EXPECT_EQ(rc.int_or("SPTX_DDP_WORKERS", 3), 3);
  EXPECT_EQ(rc.value_or("SPTX_SPMM_KERNEL", ""), "auto");
}

TEST(RuntimeConfig, SetValidatesNameTypeAndChoices) {
  RuntimeConfig rc;
  EXPECT_THROW(rc.set("SPTX_NOT_A_KNOB", "1"), Error);
  EXPECT_THROW(rc.set("SPTX_SPMM_KERNEL", "warp-speed"), Error);
  EXPECT_THROW(rc.set("SPTX_DDP_WORKERS", "many"), Error);
  rc.set("SPTX_SPMM_KERNEL", "TILED");  // case-insensitive enum
  EXPECT_EQ(rc.origin("SPTX_SPMM_KERNEL"), ConfigOrigin::kOverride);
  EXPECT_EQ(to_lower(rc.value_or("SPTX_SPMM_KERNEL", "")), "tiled");
  rc.clear("SPTX_SPMM_KERNEL");
  EXPECT_EQ(rc.value_or("SPTX_SPMM_KERNEL", ""), "auto");
  EXPECT_EQ(rc.origin("SPTX_SPMM_KERNEL"), ConfigOrigin::kDefault);
}

TEST(RuntimeConfig, TypedAccessorsRejectTypeMismatch) {
  const RuntimeConfig rc;
  EXPECT_THROW(rc.flag_or("SPTX_SCALE", false), Error);
  EXPECT_THROW(rc.int_or("SPTX_NO_SIMD", 0), Error);
  EXPECT_THROW(rc.double_or("SPTX_DDP_WORKERS", 0.0), Error);
  EXPECT_THROW(rc.flag_or("SPTX_NOT_A_KNOB", false), Error);
}

TEST(RuntimeConfig, ToJsonRendersEveryKnob) {
  RuntimeConfig rc;
  rc.set("SPTX_DDP_WORKERS", "4");
  const std::string json = rc.to_json();
  for (const ConfigSpec& spec : RuntimeConfig::specs())
    EXPECT_NE(json.find(std::string(spec.name)), std::string::npos)
        << spec.name;
  EXPECT_NE(json.find("\"SPTX_DDP_WORKERS\": {\"value\": 4, "
                      "\"origin\": \"override\"}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"SPTX_PREFETCH\": {\"value\": null"),
            std::string::npos)
      << json;
}

TEST(RuntimeConfig, InstallSwapsTheProcessSnapshot) {
  SnapshotGuard guard;
  RuntimeConfig rc;
  rc.set("SPTX_DDP_WORKERS", "13");
  config::install(rc);
  EXPECT_EQ(config::current()->int_or("SPTX_DDP_WORKERS", 1), 13);
  // A reader that grabbed the old snapshot keeps a consistent view.
  const auto held = config::current();
  config::install(RuntimeConfig{});
  EXPECT_EQ(held->int_or("SPTX_DDP_WORKERS", 1), 13);
  EXPECT_EQ(config::current()->int_or("SPTX_DDP_WORKERS", 1), 1);
}

}  // namespace
}  // namespace sptx
