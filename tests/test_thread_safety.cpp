// Regression tests for the races flushed out by the thread-safety
// annotation pass (PR 8):
//
//  * Engine::sessions_ — the session registry was an unguarded vector;
//    open_session()'s prune-and-push raced publish()/health_json()
//    iteration. Now guarded by sessions_mu_.
//  * Workspace::enabled() — a plain-int read of depth_ raced the locked
//    writes in enable()/disable(). Now an atomic with acquire/release.
//  * InferenceSession's candidate-plan cap — stats()-then-put() let
//    concurrent compilers overshoot max_cached_plans. Now
//    PlanCache::put_bounded checks and inserts under one lock.
//
// The hammer tests are small enough to finish in well under a second yet
// wide enough that TSan (SPTX_SANITIZE=thread in CI) reports the original
// interleavings on the pre-fix code.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/api/engine.hpp"
#include "src/kg/synthetic.hpp"
#include "src/profiling/counters.hpp"
#include "src/sparse/plan_cache.hpp"
#include "src/tensor/workspace.hpp"

namespace sptx {
namespace {

kg::Dataset tiny_dataset() {
  Rng rng(42);
  return kg::generate({"ts-test", 50, 4, 400}, rng, 0.05, 0.1);
}

ModelSpec tiny_spec() {
  ModelSpec spec;
  spec.family = "TransE";
  spec.config.dim = 8;
  spec.seed = 7;
  return spec;
}

// ---- PlanCache::put_bounded ------------------------------------------------

std::shared_ptr<const sparse::CompiledBatch> tiny_plan() {
  std::vector<Triplet> batch = {{0, 0, 1}, {1, 1, 2}};
  sparse::ScoringRecipe recipe;
  recipe.hrt = true;
  recipe.dim = 4;
  return sparse::CompiledBatch::compile_owned(std::move(batch), recipe, 4, 2);
}

TEST(PlanCachePutBounded, InsertsBelowCapRejectsAtCap) {
  sparse::PlanCache cache;
  const auto plan = tiny_plan();
  EXPECT_TRUE(cache.put_bounded(1, plan, 2));
  EXPECT_TRUE(cache.put_bounded(2, plan, 2));
  EXPECT_FALSE(cache.put_bounded(3, plan, 2));  // at cap: rejected
  EXPECT_EQ(cache.stats().entries, 2);
  EXPECT_NE(cache.find(1), nullptr);
  EXPECT_NE(cache.find(2), nullptr);
  EXPECT_EQ(cache.find(3), nullptr);
}

TEST(PlanCachePutBounded, ConcurrentInsertersNeverOvershootTheCap) {
  // The pre-fix sequence — if (stats().entries < cap) put(...) — admits
  // every thread that reads the size before any of them inserts. With the
  // check and insert under one lock, exactly `cap` inserts succeed no
  // matter the interleaving.
  constexpr std::int64_t kCap = 8;
  constexpr int kThreads = 4;
  constexpr int kKeysPerThread = 16;
  sparse::PlanCache cache;
  const auto plan = tiny_plan();
  std::atomic<int> accepted{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int k = 0; k < kKeysPerThread; ++k) {
        const auto key =
            static_cast<sparse::PlanCache::Key>(t * kKeysPerThread + k);
        if (cache.put_bounded(key, plan, kCap))
          accepted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(accepted.load(), kCap);
  EXPECT_EQ(cache.stats().entries, kCap);
}

// ---- Workspace::enabled ----------------------------------------------------

TEST(WorkspaceEnabled, ConcurrentReadersSeeToggles) {
  // enabled() used to read a plain int that enable()/disable() wrote under
  // the pool lock — a data race even when the torn value was harmless.
  // Readers now take an acquire load; hammer it against a toggling writer.
  auto& ws = Workspace::instance();
  ASSERT_FALSE(ws.enabled());
  std::atomic<bool> stop{false};
  std::atomic<int> observed_enabled{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed))
        if (ws.enabled()) observed_enabled.fetch_add(1);
    });
  }
  for (int i = 0; i < 200; ++i) {
    ScopedWorkspace scope;
    // Readers racing this scope may observe enabled() true or false — both
    // are valid; the point is the access itself is now well-defined.
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_FALSE(ws.enabled());  // every scope exited: depth back to zero
}

TEST(WorkspaceEnabled, NestedScopesKeepDepthBalanced) {
  auto& ws = Workspace::instance();
  ASSERT_FALSE(ws.enabled());
  {
    ScopedWorkspace outer;
    EXPECT_TRUE(ws.enabled());
    {
      ScopedWorkspace inner;
      EXPECT_TRUE(ws.enabled());
    }
    EXPECT_TRUE(ws.enabled());  // inner exit must not disable the outer scope
  }
  EXPECT_FALSE(ws.enabled());
}

// ---- Engine session registry -----------------------------------------------

TEST(EngineSessionRegistry, ConcurrentOpenPublishAndHealthProbe) {
  // Pre-fix, open_session() pruned and grew the sessions_ vector with no
  // lock while publish() and health_json() iterated it — invalidated
  // iterators under TSan, lost hot-swaps at best. The registry lock makes
  // the three surfaces safe to run concurrently; this hammers all three.
  const kg::Dataset ds = tiny_dataset();
  Engine engine;
  engine.create_model(tiny_spec(), ds.num_entities(), ds.num_relations());

  constexpr int kOpenThreads = 2;
  constexpr int kSessionsPerThread = 12;
  constexpr int kPublishes = 8;
  std::atomic<bool> done_opening{false};
  std::vector<std::shared_ptr<serve::InferenceSession>> kept[kOpenThreads];
  std::vector<std::thread> threads;

  for (int t = 0; t < kOpenThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kSessionsPerThread; ++i) {
        auto session = engine.open_session();
        // Keep every other session alive so publish() fans out over a mix
        // of live and expired registry entries.
        if (i % 2 == 0) kept[t].push_back(std::move(session));
      }
    });
  }
  threads.emplace_back([&] {
    int published = 0;
    while (!done_opening.load(std::memory_order_acquire) ||
           published < kPublishes) {
      engine.publish();
      ++published;
    }
  });
  threads.emplace_back([&] {
    while (!done_opening.load(std::memory_order_acquire)) {
      const std::string health = engine.health_json();
      EXPECT_NE(health.find("\"sessions_open\""), std::string::npos);
    }
  });
  threads[0].join();
  threads[1].join();
  done_opening.store(true, std::memory_order_release);
  threads[2].join();
  threads[3].join();

  // Every surviving session converged on the newest published snapshot.
  const std::uint64_t version = engine.published_version();
  EXPECT_GT(version, 0u);
  engine.publish();
  const std::uint64_t final_version = engine.published_version();
  EXPECT_GT(final_version, version);
  for (const auto& bucket : kept)
    for (const auto& session : bucket)
      EXPECT_EQ(session->snapshot_version(), final_version);
}

TEST(EngineSessionRegistry, HealthJsonReportsCounterTable) {
  // The health surface prints every structural counter under its stable
  // name — the same names tools/sptx_lint.py checks against the Counter
  // enum, so a drifting table fails both the lint and this test.
  const kg::Dataset ds = tiny_dataset();
  Engine engine;
  engine.create_model(tiny_spec(), ds.num_entities(), ds.num_relations());
  const std::string health = engine.health_json();
  EXPECT_NE(health.find("\"counters\""), std::string::npos);
  for (int c = 0; c < static_cast<int>(profiling::Counter::kNumCounters); ++c) {
    const char* name =
        profiling::counter_name(static_cast<profiling::Counter>(c));
    EXPECT_NE(health.find(std::string("\"") + name + "\""), std::string::npos)
        << "counter '" << name << "' missing from health_json";
  }
}

}  // namespace
}  // namespace sptx
