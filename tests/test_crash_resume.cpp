// Crash-safety end to end: checkpoint/resume bit-identity for the training
// loop (both pipelines, three model families), a real kill-and-resume drill
// driven by the fault harness (the child process is _Exit(137)'d mid
// checkpoint write, the parent resumes from the surviving rotation), and
// DDP worker-death recovery / clean abort / checkpoint resume.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <tuple>

#include "src/common/error.hpp"
#include "src/common/fault.hpp"
#include "src/distributed/ddp.hpp"
#include "src/kg/synthetic.hpp"
#include "src/models/checkpoint.hpp"
#include "src/models/model.hpp"
#include "src/runtime/task_pool.hpp"
#include "src/train/trainer.hpp"

namespace sptx {
namespace {

models::ModelConfig cfg8() {
  models::ModelConfig cfg;
  cfg.dim = 8;
  cfg.rel_dim = 4;
  return cfg;
}

kg::Dataset crash_dataset() {
  Rng rng(5);
  return kg::generate({"crash", 40, 3, 400}, rng, 0.05, 0.1);
}

/// The strongest equality there is: two models serialise to byte-identical
/// checkpoints iff every parameter is bit-identical.
std::string ckpt_bytes(models::KgeModel& model) {
  static std::atomic<int> counter{0};
  const std::string path = ::testing::TempDir() + "/probe_" +
                           std::to_string(::getpid()) + "_" +
                           std::to_string(counter.fetch_add(1));
  models::save_checkpoint(model, path);
  std::ifstream is(path, std::ios::binary);
  std::ostringstream bytes;
  bytes << is.rdbuf();
  std::remove(path.c_str());
  return bytes.str();
}

void remove_rotations(const std::string& base) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path base_path(base);
  fs::path dir = base_path.parent_path();
  if (dir.empty()) dir = ".";
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().filename().string().starts_with(
            base_path.filename().string()))
      fs::remove(entry.path(), ec);
  }
}

// ---------------------------------------------------------------------------
// Trainer checkpoint/resume — parameterised over family × pipeline.
// ---------------------------------------------------------------------------

using FamilyPipeline = std::tuple<const char*, bool>;  // (family, plan_cache)

class CrashResumeTest : public ::testing::TestWithParam<FamilyPipeline> {
 protected:
  kg::Dataset ds = crash_dataset();

  std::unique_ptr<models::KgeModel> make(std::uint64_t seed) const {
    Rng rng(seed);
    return models::make_sparse_model(std::get<0>(GetParam()),
                                     ds.num_entities(), ds.num_relations(),
                                     cfg8(), rng);
  }

  train::TrainConfig base_config() const {
    train::TrainConfig tc;
    tc.epochs = 6;
    tc.batch_size = 64;
    tc.lr = 0.05f;
    tc.seed = 13;
    // Shuffle + per-epoch resampling exercise every RNG stream a resume
    // must restore; a fixed-order run would pass with a broken RNG save.
    tc.shuffle = true;
    tc.resample_negatives = true;
    tc.plan_cache = std::get<1>(GetParam());
    return tc;
  }

  std::string tag() const {
    return std::string(std::get<0>(GetParam())) +
           (std::get<1>(GetParam()) ? "_planned" : "_legacy");
  }
};

TEST_P(CrashResumeTest, ResumeContinuesTheExactTrajectory) {
  // A — the uninterrupted reference run.
  auto model_a = make(3);
  const auto result_a = train::train(*model_a, ds.train, base_config());
  const std::string want = ckpt_bytes(*model_a);

  // B — same run, writing rotated checkpoints. Checkpointing must not
  // perturb the trajectory.
  const std::string base =
      ::testing::TempDir() + "/resume_" + tag();
  remove_rotations(base);
  auto tc_b = base_config();
  tc_b.checkpoint_every = 2;
  tc_b.checkpoint_path = base;
  tc_b.checkpoint_keep = 0;  // keep all rotations
  auto model_b = make(3);
  const auto result_b = train::train(*model_b, ds.train, tc_b);
  EXPECT_EQ(ckpt_bytes(*model_b), want);
  // Epochs 2 and 4 rotate; the final state IS the result, never rewritten.
  EXPECT_EQ(result_b.checkpoints_written, 2);
  EXPECT_EQ(result_b.last_checkpoint,
            models::checkpoint_path_for_epoch(base, 4));

  // C — resume from the newest rotation with a DIFFERENT init seed: every
  // parameter must come from the checkpoint, not the constructor.
  auto tc_c = base_config();
  tc_c.resume_from = base;
  auto model_c = make(99);
  const auto result_c = train::train(*model_c, ds.train, tc_c);
  EXPECT_EQ(result_c.start_epoch, 4);
  EXPECT_EQ(ckpt_bytes(*model_c), want);
  // The stitched loss curve equals the uninterrupted one.
  ASSERT_EQ(result_c.epoch_loss.size(), result_a.epoch_loss.size());
  for (std::size_t i = 0; i < result_a.epoch_loss.size(); ++i)
    EXPECT_FLOAT_EQ(result_c.epoch_loss[i], result_a.epoch_loss[i]);

  // D — resume from an explicit earlier rotation replays more epochs to
  // the same bits.
  auto tc_d = base_config();
  tc_d.resume_from = models::checkpoint_path_for_epoch(base, 2);
  auto model_d = make(123);
  const auto result_d = train::train(*model_d, ds.train, tc_d);
  EXPECT_EQ(result_d.start_epoch, 2);
  EXPECT_EQ(ckpt_bytes(*model_d), want);
  remove_rotations(base);
}

TEST_P(CrashResumeTest, KillMidCheckpointThenResumeIsBitIdentical) {
  // Reference run in the parent.
  auto model_a = make(3);
  train::train(*model_a, ds.train, base_config());
  const std::string want = ckpt_bytes(*model_a);

  const std::string base = ::testing::TempDir() + "/kill_" + tag();
  remove_rotations(base);
  auto tc = base_config();
  tc.checkpoint_every = 2;
  tc.checkpoint_path = base;

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: warm the TaskPool FIRST so its workers are live threads when
    // the kill lands — the pool4 variant of this suite then proves the
    // drill survives dying (and the fork surviving) with a populated pool,
    // the exact hazard TaskPool's getpid() revalidation exists for.
    {
      runtime::TaskGroup warmup;
      runtime::TaskPool::instance().submit(warmup, [] {});
      warmup.wait();
    }
    // Simulated SIGKILL on the SECOND checkpoint commit (epoch 4's),
    // after the temp file is written but before the rename — the classic
    // torn-write window.
    fault::install("checkpoint_write:kill@2");
    auto model_b = make(3);
    try {
      train::train(*model_b, ds.train, tc);
    } catch (...) {
    }
    std::_Exit(42);  // not reached: the fault harness exits first
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 137);  // died inside the commit

  // The torn epoch-4 write must be invisible: the newest VALID rotation is
  // epoch 2 (the orphaned temp file never matches a rotation name).
  const auto found = models::latest_checkpoint(base);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->epoch, 2);

  // Resume in the parent from the survivor: bit-identical final state.
  auto tc_resume = base_config();
  tc_resume.resume_from = base;
  auto model_c = make(77);
  const auto result = train::train(*model_c, ds.train, tc_resume);
  EXPECT_EQ(result.start_epoch, 2);
  EXPECT_EQ(ckpt_bytes(*model_c), want);
  remove_rotations(base);
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndPipelines, CrashResumeTest,
    ::testing::Values(FamilyPipeline{"TransE", true},
                      FamilyPipeline{"TransE", false},
                      FamilyPipeline{"TransR", true},
                      FamilyPipeline{"TransR", false},
                      FamilyPipeline{"DistMult", true},
                      FamilyPipeline{"DistMult", false}));

TEST(CrashResume, RetentionPrunesOldRotations) {
  const kg::Dataset ds = crash_dataset();
  const std::string base = ::testing::TempDir() + "/retention";
  remove_rotations(base);
  Rng rng(3);
  auto model =
      models::make_sparse_model("TransE", ds.num_entities(),
                                ds.num_relations(), cfg8(), rng);
  train::TrainConfig tc;
  tc.epochs = 8;
  tc.batch_size = 64;
  tc.checkpoint_every = 2;
  tc.checkpoint_path = base;
  tc.checkpoint_keep = 1;
  const auto result = train::train(*model, ds.train, tc);
  EXPECT_EQ(result.checkpoints_written, 3);  // ep2, ep4, ep6 (8 is final)
  // Only the newest survives the keep=1 retention.
  EXPECT_FALSE(std::filesystem::exists(
      models::checkpoint_path_for_epoch(base, 2)));
  EXPECT_FALSE(std::filesystem::exists(
      models::checkpoint_path_for_epoch(base, 4)));
  const auto found = models::latest_checkpoint(base);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->epoch, 6);
  remove_rotations(base);
}

TEST(CrashResume, MissingResumeSourceIsTypedIo) {
  const kg::Dataset ds = crash_dataset();
  Rng rng(3);
  auto model =
      models::make_sparse_model("TransE", ds.num_entities(),
                                ds.num_relations(), cfg8(), rng);
  train::TrainConfig tc;
  tc.epochs = 2;
  tc.resume_from = ::testing::TempDir() + "/definitely_not_there";
  try {
    train::train(*model, ds.train, tc);
    FAIL() << "resume from a missing checkpoint must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIo);
  }
}

// ---------------------------------------------------------------------------
// DDP fault tolerance.
// ---------------------------------------------------------------------------

struct DdpFixture {
  kg::Dataset ds = crash_dataset();

  std::function<std::unique_ptr<models::KgeModel>(Rng&)> factory() const {
    const index_t n = ds.num_entities(), r = ds.num_relations();
    return [n, r](Rng& rng) {
      return models::make_sparse_model("TransE", n, r, cfg8(), rng);
    };
  }

  distributed::DdpConfig config() const {
    distributed::DdpConfig dc;
    dc.workers = 3;
    dc.epochs = 3;
    dc.batch_size = 128;
    dc.shard_size = 32;  // fixed decomposition: results worker-invariant
    dc.lr = 0.05f;
    dc.seed = 11;
    return dc;
  }
};

TEST(DdpFault, WorkerDeathRecoversBitIdentically) {
  DdpFixture fx;
  const auto clean = distributed::train_ddp(fx.factory(), fx.ds.train,
                                            fx.config());

  // Worker 1 dies on every shard it touches in epoch 1 — once per BATCH,
  // so the budget must cover every batch of the epoch; the driving thread
  // re-runs its shards and the epoch completes bit-identically (reduction
  // is shard-index-ordered — WHO ran a shard never matters).
  auto dc = fx.config();
  dc.max_worker_retries = 16;
  fault::install("ddp_worker:die@1:1");
  const auto recovered = distributed::train_ddp(fx.factory(), fx.ds.train,
                                                dc);
  fault::clear();

  EXPECT_GE(recovered.worker_failures, 1);
  EXPECT_GE(recovered.shards_reassigned, 1);
  EXPECT_EQ(ckpt_bytes(*recovered.model), ckpt_bytes(*clean.model));
  ASSERT_EQ(recovered.epoch_loss.size(), clean.epoch_loss.size());
  for (std::size_t i = 0; i < clean.epoch_loss.size(); ++i)
    EXPECT_FLOAT_EQ(recovered.epoch_loss[i], clean.epoch_loss[i]);
}

TEST(DdpFault, ExhaustedRetriesAbortCleanlyWithValidCheckpoint) {
  DdpFixture fx;
  auto dc = fx.config();
  dc.max_worker_retries = 0;
  dc.checkpoint_path = ::testing::TempDir() + "/ddp_abort";
  std::remove((dc.checkpoint_path + ".abort").c_str());

  fault::install("ddp_worker:die@0:2");
  try {
    distributed::train_ddp(fx.factory(), fx.ds.train, dc);
    fault::clear();
    FAIL() << "retry budget 0 must abort on a worker death";
  } catch (const Error& e) {
    fault::clear();
    EXPECT_EQ(e.code(), ErrorCode::kWorkerFailed);
  }

  // The abort flushed consistent parameters; a fresh model loads them.
  Rng rng(1);
  auto model = fx.factory()(rng);
  EXPECT_NO_THROW(
      models::load_checkpoint(*model, dc.checkpoint_path + ".abort"));
  std::remove((dc.checkpoint_path + ".abort").c_str());
}

TEST(DdpFault, CheckpointResumeMatchesUninterrupted) {
  DdpFixture fx;
  auto dc = fx.config();
  dc.epochs = 4;
  const auto full = distributed::train_ddp(fx.factory(), fx.ds.train, dc);
  const std::string want = ckpt_bytes(*full.model);

  const std::string base = ::testing::TempDir() + "/ddp_resume";
  remove_rotations(base);
  auto dc_ckpt = dc;
  dc_ckpt.checkpoint_every = 2;
  dc_ckpt.checkpoint_path = base;
  const auto half = distributed::train_ddp(fx.factory(), fx.ds.train,
                                           dc_ckpt);
  EXPECT_EQ(half.checkpoints_written, 1);  // ep2 (4 is the final state)
  EXPECT_EQ(ckpt_bytes(*half.model), want);

  auto dc_resume = dc;
  dc_resume.resume_from = base;
  const auto resumed = distributed::train_ddp(fx.factory(), fx.ds.train,
                                              dc_resume);
  EXPECT_EQ(resumed.start_epoch, 2);
  EXPECT_EQ(ckpt_bytes(*resumed.model), want);
  ASSERT_EQ(resumed.epoch_loss.size(), full.epoch_loss.size());
  for (std::size_t i = 0; i < full.epoch_loss.size(); ++i)
    EXPECT_FLOAT_EQ(resumed.epoch_loss[i], full.epoch_loss[i]);
  remove_rotations(base);
}

}  // namespace
}  // namespace sptx
