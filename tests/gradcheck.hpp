// Finite-difference gradient checking utility for the autograd tests.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "src/autograd/variable.hpp"

namespace sptx::testing {

/// Checks d loss / d param against central finite differences on every
/// element of `param`. `build_loss` must construct a fresh scalar loss from
/// the given leaf (called many times). Tolerances sized for float.
inline void expect_gradient_matches(
    Matrix param_init,
    const std::function<autograd::Variable(autograd::Variable&)>& build_loss,
    float eps = 1e-3f, float tol = 2e-2f) {
  // Analytic gradient.
  autograd::Variable param = autograd::Variable::leaf(param_init, true);
  autograd::Variable loss = build_loss(param);
  ASSERT_EQ(loss.rows(), 1);
  ASSERT_EQ(loss.cols(), 1);
  loss.backward();
  const Matrix analytic = param.grad();

  // Numeric gradient, element by element.
  for (index_t i = 0; i < param_init.size(); ++i) {
    Matrix plus(param_init);
    plus.data()[i] += eps;
    Matrix minus(param_init);
    minus.data()[i] -= eps;
    autograd::Variable vp = autograd::Variable::leaf(std::move(plus), true);
    autograd::Variable vm = autograd::Variable::leaf(std::move(minus), true);
    const float lp = build_loss(vp).value().at(0, 0);
    const float lm = build_loss(vm).value().at(0, 0);
    const float numeric = (lp - lm) / (2.0f * eps);
    EXPECT_NEAR(analytic.data()[i], numeric,
                tol * (1.0f + std::fabs(numeric)))
        << "at flat index " << i;
  }
}

}  // namespace sptx::testing
