// Tests for relation-category classification and per-category evaluation.
#include <gtest/gtest.h>

#include "src/eval/link_prediction.hpp"
#include "src/kg/synthetic.hpp"

namespace sptx {
namespace {

TEST(Categories, FunctionalRelationIsOneToOne) {
  // r0: bijection between {0..4} and {5..9}.
  std::vector<Triplet> t;
  for (std::int64_t i = 0; i < 5; ++i) t.push_back({i, 0, i + 5});
  const auto cats = eval::classify_relations(TripletStore(10, 1, t));
  EXPECT_EQ(cats[0], eval::RelationCategory::kOneToOne);
}

TEST(Categories, FanOutIsOneToMany) {
  // Every head links to 4 tails.
  std::vector<Triplet> t;
  for (std::int64_t h = 0; h < 3; ++h)
    for (std::int64_t k = 0; k < 4; ++k) t.push_back({h, 0, 3 + h * 4 + k});
  const auto cats = eval::classify_relations(TripletStore(20, 1, t));
  EXPECT_EQ(cats[0], eval::RelationCategory::kOneToMany);
}

TEST(Categories, FanInIsManyToOne) {
  std::vector<Triplet> t;
  for (std::int64_t h = 0; h < 8; ++h) t.push_back({h, 0, 9});
  const auto cats = eval::classify_relations(TripletStore(10, 1, t));
  EXPECT_EQ(cats[0], eval::RelationCategory::kManyToOne);
}

TEST(Categories, DenseBipartiteIsManyToMany) {
  std::vector<Triplet> t;
  for (std::int64_t h = 0; h < 4; ++h)
    for (std::int64_t tl = 4; tl < 8; ++tl) t.push_back({h, 0, tl});
  const auto cats = eval::classify_relations(TripletStore(8, 1, t));
  EXPECT_EQ(cats[0], eval::RelationCategory::kManyToMany);
}

TEST(Categories, MixedRelationsClassifiedIndependently) {
  std::vector<Triplet> t;
  for (std::int64_t i = 0; i < 5; ++i) t.push_back({i, 0, i + 5});  // 1-1
  for (std::int64_t h = 0; h < 8; ++h) t.push_back({h, 1, 9});      // N-1
  const auto cats = eval::classify_relations(TripletStore(10, 2, t));
  EXPECT_EQ(cats[0], eval::RelationCategory::kOneToOne);
  EXPECT_EQ(cats[1], eval::RelationCategory::kManyToOne);
}

TEST(Categories, ToStringCoversAll) {
  EXPECT_STREQ(eval::to_string(eval::RelationCategory::kOneToOne), "1-1");
  EXPECT_STREQ(eval::to_string(eval::RelationCategory::kOneToMany), "1-N");
  EXPECT_STREQ(eval::to_string(eval::RelationCategory::kManyToOne), "N-1");
  EXPECT_STREQ(eval::to_string(eval::RelationCategory::kManyToMany), "N-N");
}

// Mock that scores by fixed function (same trick as test_eval).
class ConstModel final : public models::KgeModel {
 public:
  ConstModel(index_t n, index_t r) : KgeModel(n, r, {}) {}
  std::string name() const override { return "Const"; }
  autograd::Variable loss(std::span<const Triplet>,
                          std::span<const Triplet>) override {
    return autograd::Variable::leaf(Matrix(1, 1), false);
  }
  std::vector<float> score(std::span<const Triplet> batch) const override {
    std::vector<float> out(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i)
      out[i] = static_cast<float>((batch[i].head * 3 + batch[i].tail) % 7);
    return out;
  }
  std::vector<autograd::Variable> params() override { return {}; }
};

TEST(CategoryEval, QueriesPartitionAcrossCategories) {
  // Dataset with one 1-1 and one N-1 relation; test triplets in both.
  std::vector<Triplet> train;
  for (std::int64_t i = 0; i < 5; ++i) train.push_back({i, 0, i + 5});
  for (std::int64_t h = 0; h < 8; ++h) train.push_back({h, 1, 9});
  kg::Dataset ds;
  ds.train = TripletStore(12, 2, train);
  ds.valid = TripletStore(12, 2, {});
  ds.test = TripletStore(12, 2, {{0, 0, 5}, {1, 1, 9}, {2, 1, 9}});

  ConstModel model(12, 2);
  eval::EvalConfig cfg;
  cfg.filtered = false;
  const auto by_cat = eval::evaluate_by_category(model, ds, cfg);
  const auto total = eval::evaluate(model, ds, cfg);

  std::int64_t partitioned = 0;
  for (int c = 0; c < 4; ++c) partitioned += by_cat.by_category[c].queries;
  EXPECT_EQ(partitioned, total.queries);
  // 1-1 relation contributed 1 test triplet × 2 sides.
  EXPECT_EQ(by_cat.by_category[0].queries, 2);
  // N-1 relation contributed 2 × 2 sides.
  EXPECT_EQ(by_cat
                .by_category[static_cast<int>(
                    eval::RelationCategory::kManyToOne)]
                .queries,
            4);
}

TEST(CategoryEval, EmptyCategoriesReportZeroQueries) {
  std::vector<Triplet> train;
  for (std::int64_t i = 0; i < 5; ++i) train.push_back({i, 0, i + 5});
  kg::Dataset ds;
  ds.train = TripletStore(10, 1, train);
  ds.valid = TripletStore(10, 1, {});
  ds.test = TripletStore(10, 1, {{0, 0, 5}});
  ConstModel model(10, 1);
  eval::EvalConfig cfg;
  cfg.filtered = false;
  const auto by_cat = eval::evaluate_by_category(model, ds, cfg);
  EXPECT_GT(by_cat.by_category[0].queries, 0);
  for (int c = 1; c < 4; ++c) {
    EXPECT_EQ(by_cat.by_category[c].queries, 0);
    EXPECT_EQ(by_cat.by_category[c].mrr, 0.0);
  }
}

}  // namespace
}  // namespace sptx
