// Tests for dataset loading, persistence, splitting, and synthesis.
#include <gtest/gtest.h>

#include <cmath>
#include <algorithm>

#include <cstdio>
#include <fstream>

#include "src/kg/dataset.hpp"
#include "src/kg/synthetic.hpp"

namespace sptx {
namespace {

TEST(TripletStore, ValidatesRanges) {
  EXPECT_THROW(TripletStore(2, 1, {{0, 0, 5}}), Error);
  EXPECT_THROW(TripletStore(2, 1, {{0, 3, 1}}), Error);
  TripletStore ok(2, 1, {{0, 0, 1}});
  EXPECT_EQ(ok.size(), 1);
}

TEST(TripletStore, SliceBounds) {
  TripletStore store(4, 2, {{0, 0, 1}, {1, 1, 2}, {2, 0, 3}});
  auto s = store.slice(1, 2);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0].head, 1);
  EXPECT_THROW(store.slice(2, 5), Error);
}

TEST(Loader, ParsesTsvWithInterning) {
  const std::string path = ::testing::TempDir() + "/kg.tsv";
  {
    std::ofstream os(path);
    os << "# comment line\n";
    os << "alice\tknows\tbob\n";
    os << "bob\tknows\tcarol\n";
    os << "alice\tlikes\tcarol\n";
    os << "\n";  // blank line skipped
  }
  const kg::Dataset ds = kg::load_tsv(path, "toy");
  EXPECT_EQ(ds.num_entities(), 3);
  EXPECT_EQ(ds.num_relations(), 2);
  EXPECT_EQ(ds.train.size(), 3);
  // First-seen order: alice=0, bob=1, carol=2; knows=0, likes=1.
  EXPECT_EQ(ds.train[0].head, 0);
  EXPECT_EQ(ds.train[0].tail, 1);
  EXPECT_EQ(ds.train[2].relation, 1);
  EXPECT_EQ(ds.entity_names[2], "carol");
  std::remove(path.c_str());
}

TEST(Loader, ParsesCsv) {
  const std::string path = ::testing::TempDir() + "/kg.csv";
  {
    std::ofstream os(path);
    os << "a,r1,b\nb,r1,a\n";
  }
  const kg::Dataset ds = kg::load_csv(path);
  EXPECT_EQ(ds.num_entities(), 2);
  EXPECT_EQ(ds.train.size(), 2);
  std::remove(path.c_str());
}

TEST(Loader, MalformedLineThrows) {
  const std::string path = ::testing::TempDir() + "/bad.tsv";
  {
    std::ofstream os(path);
    os << "only_two\tfields\n";
  }
  EXPECT_THROW(kg::load_tsv(path), Error);
  std::remove(path.c_str());
}

TEST(Loader, TsvRoundTripPreservesStructure) {
  Rng rng(5);
  const kg::Dataset ds =
      kg::generate({"rt", 50, 4, 200}, rng, 0.0, 0.0);
  const std::string path = ::testing::TempDir() + "/roundtrip.tsv";
  kg::write_tsv(ds, path);
  const kg::Dataset back = kg::load_tsv(path);
  EXPECT_EQ(back.train.size(), ds.train.size());
  // Entity count can only shrink (isolated entities don't appear in TSV).
  EXPECT_LE(back.num_entities(), ds.num_entities());
  std::remove(path.c_str());
}

TEST(BinaryFormat, SaveLoadRoundTrip) {
  Rng rng(6);
  kg::Dataset ds = kg::generate({"bin", 40, 3, 150}, rng, 0.1, 0.1);
  ds.entity_names = {"only", "some", "names"};
  const std::string path = ::testing::TempDir() + "/ds.sptx";
  ds.save(path);
  const kg::Dataset back = kg::Dataset::load_binary(path);
  EXPECT_EQ(back.name, ds.name);
  EXPECT_EQ(back.num_entities(), ds.num_entities());
  EXPECT_EQ(back.train.size(), ds.train.size());
  EXPECT_EQ(back.valid.size(), ds.valid.size());
  EXPECT_EQ(back.test.size(), ds.test.size());
  for (std::int64_t i = 0; i < ds.train.size(); ++i)
    EXPECT_EQ(back.train[i], ds.train[i]);
  EXPECT_EQ(back.entity_names, ds.entity_names);
  std::remove(path.c_str());
}

TEST(BinaryFormat, RejectsGarbageFile) {
  const std::string path = ::testing::TempDir() + "/garbage.bin";
  {
    std::ofstream os(path, std::ios::binary);
    os << "not a dataset";
  }
  EXPECT_THROW(kg::Dataset::load_binary(path), Error);
  std::remove(path.c_str());
}

TEST(Split, FractionsRespected) {
  Rng rng(7);
  kg::Dataset all = kg::generate({"sp", 30, 3, 1000}, rng, 0.0, 0.0);
  const kg::Dataset ds = kg::split(std::move(all), 0.1, 0.2, rng);
  EXPECT_NEAR(static_cast<double>(ds.valid.size()), 100.0, 2.0);
  EXPECT_NEAR(static_cast<double>(ds.test.size()), 200.0, 2.0);
  EXPECT_EQ(ds.train.size() + ds.valid.size() + ds.test.size(), 1000);
}

TEST(Split, BadFractionsThrow) {
  Rng rng(8);
  kg::Dataset all = kg::generate({"sp2", 30, 3, 100}, rng, 0.0, 0.0);
  EXPECT_THROW(kg::split(std::move(all), 0.6, 0.5, rng), Error);
}

TEST(Profiles, Table3ValuesPresent) {
  const auto& profiles = kg::paper_profiles();
  EXPECT_GE(profiles.size(), 8u);
  const auto fb15k = kg::profile_by_name("FB15K");
  EXPECT_EQ(fb15k.entities, 14951);
  EXPECT_EQ(fb15k.relations, 1345);
  EXPECT_EQ(fb15k.triplets, 483142);
  const auto biokg = kg::profile_by_name("BIOKG");
  EXPECT_EQ(biokg.triplets, 4762678);
  EXPECT_THROW(kg::profile_by_name("NOPE"), Error);
}

TEST(Profiles, ScalingFloorsAndScales) {
  const auto half = kg::scaled(kg::profile_by_name("WN18"), 0.5);
  EXPECT_NEAR(static_cast<double>(half.entities), 40943 * 0.5, 1.0);
  const auto tiny = kg::scaled(kg::profile_by_name("WN18"), 1e-9);
  EXPECT_GE(tiny.entities, 64);
  EXPECT_GE(tiny.relations, 4);
  EXPECT_GE(tiny.triplets, 256);
  EXPECT_THROW(kg::scaled(kg::profile_by_name("WN18"), 0.0), Error);
}

class SyntheticTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SyntheticTest, GeneratedGraphMatchesProfile) {
  Rng rng(9);
  const auto profile = kg::scaled(kg::profile_by_name(GetParam()), 0.002);
  const kg::Dataset ds = kg::generate(profile, rng);
  EXPECT_EQ(ds.num_entities(), profile.entities);
  EXPECT_EQ(ds.num_relations(), profile.relations);
  EXPECT_EQ(ds.train.size() + ds.valid.size() + ds.test.size(),
            profile.triplets);
  // All triplets in range (TripletStore validated on construction) and the
  // relation distribution covers multiple relations.
  std::vector<bool> seen(static_cast<std::size_t>(profile.relations));
  for (const Triplet& t : ds.train.triplets())
    seen[static_cast<std::size_t>(t.relation)] = true;
  int covered = 0;
  for (bool b : seen) covered += b ? 1 : 0;
  EXPECT_GT(covered, static_cast<int>(profile.relations / 2));
}

INSTANTIATE_TEST_SUITE_P(Profiles, SyntheticTest,
                         ::testing::Values("FB15K", "WN18", "FB13",
                                           "YAGO3-10", "BIOKG", "COVID19"));

TEST(Synthetic, DeterministicGivenSeed) {
  Rng rng1(42), rng2(42);
  const auto profile = kg::DatasetProfile{"det", 100, 5, 500};
  const kg::Dataset a = kg::generate(profile, rng1);
  const kg::Dataset b = kg::generate(profile, rng2);
  ASSERT_EQ(a.train.size(), b.train.size());
  for (std::int64_t i = 0; i < a.train.size(); ++i)
    EXPECT_EQ(a.train[i], b.train[i]);
}

TEST(Synthetic, PlantedStructureIsSkewed) {
  // The degree distribution must be heavy-tailed: the busiest entity sees
  // far more than the mean number of edges.
  Rng rng(10);
  const kg::Dataset ds = kg::generate({"skew", 200, 4, 4000}, rng, 0.0, 0.0);
  std::vector<int> degree(200, 0);
  for (const Triplet& t : ds.train.triplets()) {
    degree[static_cast<std::size_t>(t.head)]++;
    degree[static_cast<std::size_t>(t.tail)]++;
  }
  const int max_deg = *std::max_element(degree.begin(), degree.end());
  const double mean_deg = 2.0 * 4000 / 200;
  EXPECT_GT(max_deg, 2 * mean_deg);
}

}  // namespace
}  // namespace sptx
