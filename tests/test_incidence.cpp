// Tests for the incidence-matrix builders (§4.2) — the core reformulation.
#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/sparse/incidence.hpp"

namespace sptx {
namespace {

std::vector<Triplet> random_batch(index_t m, index_t n, index_t r, Rng& rng) {
  std::vector<Triplet> batch;
  batch.reserve(static_cast<std::size_t>(m));
  for (index_t i = 0; i < m; ++i) {
    batch.push_back(
        {static_cast<std::int64_t>(rng.next_below(
             static_cast<std::uint64_t>(n))),
         static_cast<std::int64_t>(
             rng.next_below(static_cast<std::uint64_t>(r))),
         static_cast<std::int64_t>(
             rng.next_below(static_cast<std::uint64_t>(n)))});
  }
  return batch;
}

TEST(Incidence, HtMatchesFigure3a) {
  // Figure 3(a): h-idx = 5, t-idx = 15, entity-count = 22.
  std::vector<Triplet> batch = {{5, 0, 15}};
  const Coo a = build_ht_incidence(batch, 22);
  EXPECT_EQ(a.rows, 1);
  EXPECT_EQ(a.cols, 22);
  const Matrix d = to_dense(a);
  EXPECT_FLOAT_EQ(d.at(0, 5), 1.0f);
  EXPECT_FLOAT_EQ(d.at(0, 15), -1.0f);
  float sum_abs = 0.0f;
  for (index_t j = 0; j < 22; ++j) sum_abs += std::abs(d.at(0, j));
  EXPECT_FLOAT_EQ(sum_abs, 2.0f);
}

TEST(Incidence, HrtMatchesFigure3b) {
  // Figure 3(b): h-idx = 5, t-idx = 15, r-idx = 2, entity-count = 20,
  // relation column offset by entity count → column 22.
  std::vector<Triplet> batch = {{5, 2, 15}};
  const Coo a = build_hrt_incidence(batch, 20, 10);
  EXPECT_EQ(a.cols, 30);
  const Matrix d = to_dense(a);
  EXPECT_FLOAT_EQ(d.at(0, 5), 1.0f);
  EXPECT_FLOAT_EQ(d.at(0, 15), -1.0f);
  EXPECT_FLOAT_EQ(d.at(0, 22), 1.0f);
}

// Appendix B property: nnz per row is exactly 2 (ht) / 3 (hrt) regardless
// of graph density or duplicate triplets.
class IncidenceSparsityTest : public ::testing::TestWithParam<int> {};

TEST_P(IncidenceSparsityTest, HtHasExactlyTwoNnzPerRow) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const auto batch = random_batch(50, 30, 6, rng);
  const Csr a = build_ht_incidence_csr(batch, 30);
  for (index_t i = 0; i < a.rows; ++i) EXPECT_EQ(a.row_nnz(i), 2);
  EXPECT_EQ(a.nnz(), 100);
}

TEST_P(IncidenceSparsityTest, HrtHasExactlyThreeNnzPerRow) {
  Rng rng(static_cast<std::uint64_t>(GetParam() + 100));
  const auto batch = random_batch(50, 30, 6, rng);
  const Csr a = build_hrt_incidence_csr(batch, 30, 6);
  for (index_t i = 0; i < a.rows; ++i) EXPECT_EQ(a.row_nnz(i), 3);
}

TEST_P(IncidenceSparsityTest, CsrAndCooBuildersAgree) {
  Rng rng(static_cast<std::uint64_t>(GetParam() + 200));
  const auto batch = random_batch(40, 25, 5, rng);
  EXPECT_LT(max_abs_diff(to_dense(build_ht_incidence(batch, 25)),
                         to_dense(build_ht_incidence_csr(batch, 25))),
            1e-7f);
  EXPECT_LT(max_abs_diff(to_dense(build_hrt_incidence(batch, 25, 5)),
                         to_dense(build_hrt_incidence_csr(batch, 25, 5))),
            1e-7f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncidenceSparsityTest,
                         ::testing::Range(0, 8));

TEST(Incidence, SelfLoopKeepsBothCoefficients) {
  // head == tail: the +1 and −1 coexist so A·E correctly yields zero.
  std::vector<Triplet> batch = {{3, 1, 3}};
  const Csr a = build_ht_incidence_csr(batch, 8);
  EXPECT_EQ(a.row_nnz(0), 2);
  const Matrix d = to_dense(a);
  EXPECT_FLOAT_EQ(d.at(0, 3), 0.0f);  // coefficients cancel in dense view
}

TEST(Incidence, OutOfRangeEntityThrows) {
  std::vector<Triplet> batch = {{9, 0, 1}};
  EXPECT_THROW(build_ht_incidence_csr(batch, 5), Error);
  EXPECT_THROW(build_hrt_incidence_csr(batch, 5, 3), Error);
}

TEST(Incidence, OutOfRangeRelationThrows) {
  std::vector<Triplet> batch = {{0, 7, 1}};
  EXPECT_THROW(build_hrt_incidence_csr(batch, 5, 3), Error);
}

TEST(Incidence, EmptyBatchYieldsEmptyMatrix) {
  std::vector<Triplet> batch;
  const Csr a = build_ht_incidence_csr(batch, 5);
  EXPECT_EQ(a.rows, 0);
  EXPECT_EQ(a.nnz(), 0);
  EXPECT_EQ(a.row_ptr.size(), 1u);
}

TEST(Incidence, RelationColumnsOffsetByEntityCount) {
  std::vector<Triplet> batch = {{0, 0, 1}, {1, 4, 0}};
  const Csr a = build_hrt_incidence_csr(batch, 10, 5);
  // Row 1's relation entry must land at column 10 + 4.
  bool found = false;
  for (index_t k = a.row_ptr[1]; k < a.row_ptr[2]; ++k) {
    if (a.col_idx[static_cast<std::size_t>(k)] == 14) {
      EXPECT_FLOAT_EQ(a.values[static_cast<std::size_t>(k)], 1.0f);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace sptx
