// Tests for clustered ANN top-k serving (serve/ann_index.hpp):
//
//  * index structure — the CSR lists partition the entities exactly once,
//    and probing every list returns every entity;
//  * recall — on Zipf-skewed clustered embeddings, every model family with
//    a probe transform clears a recall@10 floor against brute force;
//  * exactness — scores on the ANN path are BIT-IDENTICAL to brute force
//    (the candidate set is approximate, the scores never are), and with
//    nprobe = k_lists the result set itself equals brute force;
//  * dispatch — kAuto below the entity threshold, kOff, and families
//    without a transform all fall back to the brute path (proved by the
//    session's topk_brute/topk_ann counters, not by timing).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "src/models/snapshot.hpp"
#include "src/serve/ann_index.hpp"
#include "src/serve/session.hpp"

namespace sptx {
namespace {

constexpr index_t kEntities = 3000;
constexpr index_t kRelations = 4;
constexpr index_t kDim = 16;

/// A frozen model whose entity rows form a Zipf-skewed Gaussian mixture:
/// cluster id = C·u² piles entities into the low-id clusters while keeping
/// every cluster populated; rows are center + small noise. Relation rows
/// stay small so translated queries land inside the clustered region.
std::shared_ptr<const models::KgeModel> clustered_model(
    const std::string& family,
    models::Dissimilarity dissim = models::Dissimilarity::kL2) {
  models::ModelSpec spec;
  spec.family = family;
  spec.config.dim = kDim;
  spec.config.rel_dim = kDim;
  spec.config.dissimilarity = dissim;
  spec.config.normalize_entities = false;
  spec.seed = 17;
  auto model = models::make_model(spec, kEntities, kRelations);

  Matrix& table = model->params()[0].mutable_value();
  Rng rng(91);
  constexpr index_t kClusters = 24;
  Matrix centers(kClusters, kDim);
  for (index_t c = 0; c < kClusters; ++c)
    for (index_t j = 0; j < kDim; ++j) centers.at(c, j) = rng.normal();
  for (index_t e = 0; e < kEntities; ++e) {
    const float u = rng.next_float();
    const auto c = std::min<index_t>(
        static_cast<index_t>(static_cast<float>(kClusters) * u * u),
        kClusters - 1);
    float* row = table.row(e);
    for (index_t j = 0; j < kDim; ++j)
      row[j] = centers.at(c, j) + 0.15f * rng.normal();
  }
  if (table.rows() >= kEntities + kRelations) {
    for (index_t r = 0; r < kRelations; ++r) {
      float* row = table.row(kEntities + r);
      for (index_t j = 0; j < kDim; ++j) row[j] = 0.1f * rng.normal();
    }
  }
  return std::shared_ptr<const models::KgeModel>(std::move(model));
}

std::shared_ptr<serve::InferenceSession> open(
    std::shared_ptr<const models::KgeModel> model, serve::AnnMode ann,
    int nprobe = 0, index_t min_entities = 0) {
  serve::SessionOptions so;
  so.ann = ann;
  so.ann_nprobe = nprobe;
  if (min_entities > 0) so.ann_min_entities = min_entities;
  return std::make_shared<serve::InferenceSession>(std::move(model), so);
}

// ---- index structure --------------------------------------------------------

TEST(AnnIndex, ListsPartitionEveryEntityExactlyOnce) {
  const auto model = clustered_model("TransE");
  const auto support = model->ann_support();
  ASSERT_TRUE(support.has_value());
  const auto index = serve::AnnIndex::build(*support->table, kEntities);
  EXPECT_GT(index->k_lists(), 1);
  EXPECT_EQ(index->num_points(), kEntities);

  // Probing every list must return each entity exactly once.
  std::vector<float> q(kDim, 0.0f);
  std::vector<index_t> out;
  const serve::AnnIndex::Probe probe{kernels::Norm::kL2, false, nullptr};
  const int probed =
      index->probe(q.data(), probe, static_cast<int>(index->k_lists()),
                   /*min_candidates=*/0, out);
  EXPECT_EQ(probed, static_cast<int>(index->k_lists()));
  ASSERT_EQ(static_cast<index_t>(out.size()), kEntities);
  std::sort(out.begin(), out.end());
  for (index_t e = 0; e < kEntities; ++e)
    ASSERT_EQ(out[static_cast<std::size_t>(e)], e);
}

TEST(AnnIndex, MinCandidatesKeepsProbingPastNprobe) {
  const auto model = clustered_model("TransE");
  const auto support = model->ann_support();
  const auto index = serve::AnnIndex::build(*support->table, kEntities);
  std::vector<float> q(kDim, 0.25f);
  std::vector<index_t> out;
  const serve::AnnIndex::Probe probe{kernels::Norm::kL2, false, nullptr};
  index->probe(q.data(), probe, /*nprobe=*/1, /*min_candidates=*/64, out);
  EXPECT_GE(static_cast<index_t>(out.size()), 64);
}

TEST(AnnIndex, ParseModeAcceptsKnownValuesRejectsOthers) {
  EXPECT_EQ(serve::parse_ann_mode("auto"), serve::AnnMode::kAuto);
  EXPECT_EQ(serve::parse_ann_mode("ON"), serve::AnnMode::kOn);
  EXPECT_EQ(serve::parse_ann_mode("off"), serve::AnnMode::kOff);
  EXPECT_THROW(serve::parse_ann_mode("fast"), Error);
}

// ---- recall + exactness across families ------------------------------------

struct FamilyCase {
  const char* family;
  models::Dissimilarity dissim;
};

class AnnFamily : public ::testing::TestWithParam<FamilyCase> {};

TEST_P(AnnFamily, RecallClearsFloorAndScoresAreExact) {
  const auto& param = GetParam();
  const auto model = clustered_model(param.family, param.dissim);
  ASSERT_TRUE(model->ann_support().has_value())
      << param.family << " should advertise a probe transform";

  const auto ann = open(model, serve::AnnMode::kOn, /*nprobe=*/8);
  const auto brute = open(model, serve::AnnMode::kOff);
  ASSERT_NE(ann->snapshot()->ann, nullptr);

  constexpr int kTop = 10;
  constexpr std::int64_t kQueries = 24;
  double recall = 0.0;
  Rng rng(57);
  for (std::int64_t q = 0; q < kQueries; ++q) {
    const auto anchor = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(kEntities)));
    const auto rel = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(kRelations)));
    const bool tails = (q % 2) == 0;
    const auto truth = tails ? brute->top_tails(anchor, rel, kTop)
                             : brute->top_heads(rel, anchor, kTop);
    const auto approx = tails ? ann->top_tails(anchor, rel, kTop)
                              : ann->top_heads(rel, anchor, kTop);
    ASSERT_EQ(truth.size(), static_cast<std::size_t>(kTop));
    ASSERT_EQ(approx.size(), static_cast<std::size_t>(kTop));
    int hits = 0;
    for (const auto& t : truth) {
      for (const auto& a : approx) {
        if (a.entity == t.entity) {
          // THE exactness contract: an entity both paths return carries
          // bit-identical scores — the re-rank went through score().
          ASSERT_EQ(a.score, t.score)
              << param.family << " entity " << t.entity;
          ++hits;
          break;
        }
      }
    }
    recall += static_cast<double>(hits) / kTop;
  }
  recall /= static_cast<double>(kQueries);
  EXPECT_GE(recall, 0.9) << param.family << " recall@10 below floor";

  const auto stats = ann->stats();
  EXPECT_EQ(stats.topk_ann, kQueries);
  EXPECT_EQ(stats.topk_brute, 0);
  EXPECT_GT(stats.ann_candidates, 0);
  // Probing 8 of ~√N lists must scan well under the full vocabulary.
  EXPECT_LT(stats.ann_candidates / stats.topk_ann, kEntities);
}

TEST_P(AnnFamily, FullProbeEqualsBruteForceExactly) {
  const auto& param = GetParam();
  const auto model = clustered_model(param.family, param.dissim);
  const auto brute = open(model, serve::AnnMode::kOff);
  const auto ann = open(model, serve::AnnMode::kOn);
  ASSERT_NE(ann->snapshot()->ann, nullptr);
  const auto k_lists = static_cast<int>(ann->snapshot()->ann->k_lists());
  // nprobe = k_lists scans every list: the candidate set is the full
  // vocabulary, so result SET and ORDER must match brute force exactly
  // (same strict comparator, same entity-id tie-break).
  const auto full = open(model, serve::AnnMode::kOn, k_lists);

  Rng rng(58);
  for (int q = 0; q < 6; ++q) {
    const auto anchor = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(kEntities)));
    const auto rel = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(kRelations)));
    const auto expect = brute->top_tails(anchor, rel, 10);
    const auto got = full->top_tails(anchor, rel, 10);
    ASSERT_EQ(expect.size(), got.size());
    for (std::size_t i = 0; i < expect.size(); ++i) {
      EXPECT_EQ(expect[i].entity, got[i].entity) << param.family;
      EXPECT_EQ(expect[i].score, got[i].score) << param.family;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, AnnFamily,
    ::testing::Values(FamilyCase{"TransE", models::Dissimilarity::kL2},
                      FamilyCase{"TransE", models::Dissimilarity::kL1},
                      FamilyCase{"TransC", models::Dissimilarity::kL2},
                      FamilyCase{"TransM", models::Dissimilarity::kL2},
                      FamilyCase{"TransA", models::Dissimilarity::kL2},
                      FamilyCase{"DistMult", models::Dissimilarity::kL2},
                      FamilyCase{"ComplEx", models::Dissimilarity::kL2},
                      FamilyCase{"RotatE", models::Dissimilarity::kL2}),
    [](const ::testing::TestParamInfo<FamilyCase>& param_info) {
      return std::string(param_info.param.family) +
             (param_info.param.dissim == models::Dissimilarity::kL1 ? "L1" : "");
    });

// ---- dispatch gating --------------------------------------------------------

TEST(AnnDispatch, AutoBelowThresholdFallsBackToBrute) {
  const auto model = clustered_model("TransE");
  // Threshold above the vocabulary: kAuto must not build an index, and
  // every top-k goes brute — proved by the dispatch counters.
  const auto session = open(model, serve::AnnMode::kAuto, /*nprobe=*/0,
                            /*min_entities=*/kEntities + 1);
  EXPECT_EQ(session->snapshot()->ann, nullptr);
  session->top_tails(1, 0, 5);
  session->top_heads(0, 2, 5);
  const auto stats = session->stats();
  EXPECT_EQ(stats.topk_brute, 2);
  EXPECT_EQ(stats.topk_ann, 0);
}

TEST(AnnDispatch, AutoAboveThresholdUsesIndex) {
  const auto model = clustered_model("TransE");
  const auto session = open(model, serve::AnnMode::kAuto, /*nprobe=*/0,
                            /*min_entities=*/kEntities);
  EXPECT_NE(session->snapshot()->ann, nullptr);
  session->top_tails(1, 0, 5);
  const auto stats = session->stats();
  EXPECT_EQ(stats.topk_ann, 1);
  EXPECT_EQ(stats.topk_brute, 0);
}

TEST(AnnDispatch, OffNeverBuildsOrProbes) {
  const auto model = clustered_model("TransE");
  const auto session = open(model, serve::AnnMode::kOff);
  EXPECT_EQ(session->snapshot()->ann, nullptr);
  session->top_tails(1, 0, 5);
  EXPECT_EQ(session->stats().topk_brute, 1);
}

TEST(AnnDispatch, FamilyWithoutTransformFallsBackEvenWhenForcedOn) {
  for (const char* family : {"TorusE", "TransH"}) {
    models::ModelSpec spec;
    spec.family = family;
    spec.config.dim = kDim;
    spec.config.rel_dim = kDim;
    spec.seed = 5;
    auto model = models::make_model(spec, 200, kRelations);
    std::shared_ptr<const models::KgeModel> frozen(std::move(model));
    EXPECT_FALSE(frozen->ann_support().has_value()) << family;
    EXPECT_THROW(frozen->ann_query(true, 0, 0, nullptr), Error);
    const auto session = open(frozen, serve::AnnMode::kOn);
    EXPECT_EQ(session->snapshot()->ann, nullptr) << family;
    session->top_tails(1, 0, 5);
    EXPECT_EQ(session->stats().topk_brute, 1) << family;
    EXPECT_EQ(session->stats().topk_ann, 0) << family;
  }
}

TEST(AnnDispatch, FilterStillExcludesKnownPositivesOnAnnPath) {
  const auto model = clustered_model("TransE");
  // Find what the unfiltered ANN path ranks first, declare it a known
  // positive, and check it vanishes from the filtered session's results.
  const auto unfiltered = open(model, serve::AnnMode::kOn);
  const auto first = unfiltered->top_tails(7, 1, 1);
  ASSERT_EQ(first.size(), 1u);

  TripletStore known(kEntities, kRelations, {});
  known.add({7, 1, first[0].entity});
  serve::SessionOptions so;
  so.ann = serve::AnnMode::kOn;
  so.filter = &known;
  const auto filtered =
      std::make_shared<serve::InferenceSession>(model, so);
  for (const auto& p : filtered->top_tails(7, 1, 10))
    EXPECT_NE(p.entity, first[0].entity);
}

}  // namespace
}  // namespace sptx
