// Tests for the inference serving layer (serve/session.hpp): correctness of
// scoring / top-k / rank queries against brute force, micro-batch
// coalescing equivalence, the candidate-plan cache, and — the load-bearing
// contract — identical results for concurrent vs sequential execution from
// many threads over one shared session.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "src/api/engine.hpp"
#include "src/common/fault.hpp"
#include "src/kg/synthetic.hpp"
#include "src/serve/micro_batcher.hpp"

namespace sptx {
namespace {

kg::Dataset tiny_dataset(std::uint64_t seed = 11) {
  Rng rng(seed);
  return kg::generate({"serve-test", 50, 4, 600}, rng, 0.05, 0.1);
}

/// A session over a lightly trained TransE snapshot, plus the frozen model
/// itself for brute-force comparison.
struct Fixture {
  kg::Dataset ds = tiny_dataset();
  Engine engine;
  std::shared_ptr<const models::KgeModel> frozen;

  explicit Fixture(const char* family = "TransE") {
    ModelSpec spec;
    spec.family = family;
    spec.config.dim = 16;
    spec.config.rel_dim = 8;
    spec.seed = 3;
    engine.create_model(spec, ds.num_entities(), ds.num_relations());
    train::TrainConfig tc;
    tc.epochs = 2;
    tc.batch_size = 128;
    engine.train(ds.train, tc);
    frozen = engine.freeze();
  }

  std::shared_ptr<serve::InferenceSession> session(
      serve::SessionOptions options = {}) {
    return engine.open_session(options);
  }
};

std::vector<Triplet> random_queries(const kg::Dataset& ds, std::size_t count,
                                    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Triplet> out(count);
  for (auto& t : out) {
    t.head = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(ds.num_entities())));
    t.relation = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(ds.num_relations())));
    t.tail = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(ds.num_entities())));
  }
  return out;
}

TEST(Serve, ScoreMatchesModelWithAndWithoutMicroBatching) {
  Fixture fx;
  const auto queries = random_queries(fx.ds, 64, 1);
  const auto expected = fx.frozen->score(queries);

  for (bool micro : {false, true}) {
    serve::SessionOptions so;
    so.micro_batch = micro;
    auto session = fx.session(so);
    const auto got = session->score(queries);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i)
      EXPECT_EQ(got[i], expected[i]) << "micro=" << micro << " i=" << i;
    EXPECT_EQ(session->score_one(queries[0]), expected[0]);
  }
}

TEST(Serve, ConcurrentQueriesMatchSequentialExecution) {
  Fixture fx;
  constexpr int kThreads = 8;
  constexpr std::size_t kBatches = 40;
  constexpr std::size_t kBatchSize = 6;

  // Per-thread query streams with brute-force expected answers.
  std::vector<std::vector<Triplet>> queries(kThreads);
  std::vector<std::vector<float>> expected(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    queries[w] = random_queries(fx.ds, kBatches * kBatchSize,
                                static_cast<std::uint64_t>(100 + w));
    expected[w] = fx.frozen->score(queries[w]);
  }

  // A linger window forces real coalescing: leaders wait for followers, so
  // most executions fuse requests from several threads.
  serve::SessionOptions so;
  so.micro_batch = true;
  so.window_us = 200;
  auto session = fx.session(so);

  std::vector<std::vector<float>> got(kThreads);
  std::vector<std::thread> pool;
  for (int w = 0; w < kThreads; ++w) {
    pool.emplace_back([&, w] {
      got[w].reserve(queries[w].size());
      for (std::size_t b = 0; b < kBatches; ++b) {
        const std::span<const Triplet> batch(
            queries[w].data() + b * kBatchSize, kBatchSize);
        const auto scores = session->score(batch);
        got[w].insert(got[w].end(), scores.begin(), scores.end());
      }
    });
  }
  for (auto& t : pool) t.join();

  for (int w = 0; w < kThreads; ++w) {
    ASSERT_EQ(got[w].size(), expected[w].size());
    for (std::size_t i = 0; i < got[w].size(); ++i)
      EXPECT_EQ(got[w][i], expected[w][i]) << "thread " << w << " i " << i;
  }

  const auto stats = session->stats();
  EXPECT_EQ(stats.batcher.requests,
            static_cast<std::int64_t>(kThreads * kBatches));
  // With 8 threads hammering through a 200us window, at least some
  // requests must have shared an execution.
  EXPECT_GT(stats.batcher.coalesced_requests, 0);
  EXPECT_LT(stats.batcher.batches_executed, stats.batcher.requests);
}

TEST(Serve, ConcurrentTopKAndRankMatchSequential) {
  Fixture fx;
  constexpr int kThreads = 6;
  auto session = fx.session();

  // Expected answers computed sequentially first.
  std::vector<std::vector<serve::Prediction>> expected_top(kThreads);
  std::vector<double> expected_rank(kThreads);
  const auto probe = random_queries(fx.ds, kThreads, 55);
  for (int w = 0; w < kThreads; ++w) {
    expected_top[w] =
        session->top_tails(probe[w].head, probe[w].relation, 5);
    expected_rank[w] = session->rank(probe[w]);
  }

  std::vector<std::vector<serve::Prediction>> got_top(kThreads);
  std::vector<double> got_rank(kThreads);
  std::vector<std::thread> pool;
  for (int w = 0; w < kThreads; ++w) {
    pool.emplace_back([&, w] {
      for (int repeat = 0; repeat < 10; ++repeat) {
        got_top[w] = session->top_tails(probe[w].head, probe[w].relation, 5);
        got_rank[w] = session->rank(probe[w]);
      }
    });
  }
  for (auto& t : pool) t.join();

  for (int w = 0; w < kThreads; ++w) {
    EXPECT_EQ(got_rank[w], expected_rank[w]);
    ASSERT_EQ(got_top[w].size(), expected_top[w].size());
    for (std::size_t i = 0; i < got_top[w].size(); ++i) {
      EXPECT_EQ(got_top[w][i].entity, expected_top[w][i].entity);
      EXPECT_EQ(got_top[w][i].score, expected_top[w][i].score);
    }
  }
  // Repeated identical queries hit the candidate-plan cache.
  EXPECT_GT(session->stats().plans.hits, 0);
}

TEST(Serve, TopTailsMatchesBruteForce) {
  Fixture fx;
  auto session = fx.session();
  const std::int64_t head = 3, relation = 1;
  const int k = 7;

  // Brute force: score every (head, relation, e) and sort.
  const index_t n = fx.ds.num_entities();
  std::vector<Triplet> candidates(static_cast<std::size_t>(n));
  for (index_t e = 0; e < n; ++e)
    candidates[static_cast<std::size_t>(e)] = {head, relation, e};
  const auto scores = fx.frozen->score(candidates);
  std::vector<std::int64_t> order(static_cast<std::size_t>(n));
  for (index_t e = 0; e < n; ++e) order[static_cast<std::size_t>(e)] = e;
  const bool higher = fx.frozen->higher_is_better();
  std::sort(order.begin(), order.end(), [&](std::int64_t a, std::int64_t b) {
    const float sa = scores[static_cast<std::size_t>(a)];
    const float sb = scores[static_cast<std::size_t>(b)];
    if (sa != sb) return higher ? sa > sb : sa < sb;
    return a < b;
  });

  const auto top = session->top_tails(head, relation, k);
  ASSERT_EQ(top.size(), static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    EXPECT_EQ(top[static_cast<std::size_t>(i)].entity,
              order[static_cast<std::size_t>(i)]);
    EXPECT_EQ(top[static_cast<std::size_t>(i)].score,
              scores[static_cast<std::size_t>(
                  order[static_cast<std::size_t>(i)])]);
  }

  // k past the vocabulary clamps.
  EXPECT_EQ(session->top_tails(head, relation, 10000).size(),
            static_cast<std::size_t>(n));
}

TEST(Serve, FilterExcludesKnownPositives) {
  Fixture fx;
  serve::SessionOptions so;
  so.filter = &fx.ds.train;
  auto filtered = fx.session(so);
  auto unfiltered = fx.session();

  // Pick a training triplet; its tail must never appear in the filtered
  // top-k for (head, relation, ?) but is eligible unfiltered.
  const Triplet known = fx.ds.train[0];
  const auto n = static_cast<int>(fx.ds.num_entities());
  const auto top = filtered->top_tails(known.head, known.relation, n);
  for (const auto& p : top) {
    EXPECT_FALSE((p.entity == known.tail))
        << "filtered top-k leaked a known positive";
  }
  const auto top_unfiltered =
      unfiltered->top_tails(known.head, known.relation, n);
  EXPECT_GT(top_unfiltered.size(), top.size());

  // Rank: filtering removes competitors, so the filtered rank can only be
  // better (smaller) or equal, never worse.
  const Triplet probe = fx.ds.test[0];
  EXPECT_LE(filtered->rank(probe), unfiltered->rank(probe));
}

TEST(Serve, RankMatchesManualComputation) {
  Fixture fx;
  auto session = fx.session();
  const Triplet truth = fx.ds.test[0];

  const index_t n = fx.ds.num_entities();
  std::vector<Triplet> candidates(static_cast<std::size_t>(n));
  for (index_t e = 0; e < n; ++e)
    candidates[static_cast<std::size_t>(e)] = {truth.head, truth.relation, e};
  const auto scores = fx.frozen->score(candidates);
  const float truth_score = scores[static_cast<std::size_t>(truth.tail)];
  const bool higher = fx.frozen->higher_is_better();
  std::int64_t better = 0, ties = 0;
  for (index_t e = 0; e < n; ++e) {
    if (e == truth.tail) continue;
    const float s = scores[static_cast<std::size_t>(e)];
    if (higher ? s > truth_score : s < truth_score) {
      ++better;
    } else if (s == truth_score) {
      ++ties;
    }
  }
  const double expected =
      1.0 + static_cast<double>(better) + static_cast<double>(ties) / 2.0;
  EXPECT_EQ(session->rank(truth, true), expected);

  const auto batch_ranks = session->rank_batch(
      std::span<const Triplet>(&truth, 1), true);
  ASSERT_EQ(batch_ranks.size(), 1u);
  EXPECT_EQ(batch_ranks[0], expected);
}

TEST(Serve, CandidatePlanCacheCapsResidency) {
  Fixture fx;
  serve::SessionOptions so;
  so.max_cached_plans = 2;
  auto session = fx.session(so);
  for (std::int64_t h = 0; h < 6; ++h) session->top_tails(h, 0, 3);
  const auto stats = session->stats();
  EXPECT_LE(stats.plans.entries, 2);
  EXPECT_EQ(stats.plans.misses, 6);
  // Cached anchors still hit.
  session->top_tails(0, 0, 3);
  EXPECT_EQ(session->stats().plans.hits, 1);

  // plan_cache off: no plans at all.
  serve::SessionOptions off;
  off.plan_cache = false;
  auto uncached = fx.session(off);
  uncached->top_tails(0, 0, 3);
  EXPECT_EQ(uncached->stats().plans.misses, 0);
  EXPECT_EQ(uncached->stats().plans.entries, 0);
}

TEST(Serve, SemiringFamilyServesHigherIsBetter) {
  Fixture fx("DistMult");
  ASSERT_TRUE(fx.frozen->higher_is_better());
  auto session = fx.session();
  const auto top = session->top_tails(1, 0, 3);
  ASSERT_EQ(top.size(), 3u);
  // Predictions are ordered best-first: descending for similarity models.
  EXPECT_GE(top[0].score, top[1].score);
  EXPECT_GE(top[1].score, top[2].score);
}

TEST(Serve, OutOfRangeIdsAreRejectedNotDereferenced) {
  Fixture fx;
  auto session = fx.session();
  const auto n = fx.ds.num_entities();
  EXPECT_THROW(session->score_one({n, 0, 0}), Error);
  EXPECT_THROW(session->score_one({0, fx.ds.num_relations(), 0}), Error);
  EXPECT_THROW(session->score_one({0, 0, -1}), Error);
  EXPECT_THROW(session->rank({0, 0, n}), Error);        // truth-side entity
  EXPECT_THROW(session->rank({-1, 0, 0}, false), Error);
  EXPECT_THROW(session->top_tails(n, 0, 3), Error);
  EXPECT_THROW(session->top_heads(-1, 0, 3), Error);
  // In-range queries still work after the rejections.
  EXPECT_NO_THROW(session->score_one({0, 0, 0}));
}

TEST(MicroBatcherUnit, OversizedRequestStillExecutes) {
  const auto echo = [](std::span<const Triplet> batch) {
    std::vector<float> out(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i)
      out[i] = static_cast<float>(batch[i].head);
    return out;
  };
  serve::MicroBatcher batcher(echo, /*max_batch=*/4,
                              std::chrono::microseconds(0));
  std::vector<Triplet> big(10);
  for (std::size_t i = 0; i < big.size(); ++i)
    big[i].head = static_cast<std::int64_t>(i);
  std::vector<float> out(big.size());
  batcher.execute(big, out.data());
  for (std::size_t i = 0; i < big.size(); ++i)
    EXPECT_EQ(out[i], static_cast<float>(i));
  EXPECT_EQ(batcher.stats().batches_executed, 1);
  batcher.execute({}, nullptr);  // empty request is a no-op
  EXPECT_EQ(batcher.stats().requests, 1);
}

// ---------------------------------------------------------------------------
// Graceful degradation: bounded queue, per-request deadlines, typed
// rejections. The contract under overload: nobody hangs, every request gets
// either its exact scores or a typed rejection, and shedding never changes
// the answers of the requests that are served.
// ---------------------------------------------------------------------------

TEST(MicroBatcherDegrade, PastDeadlineRejectedOnArrival) {
  std::atomic<int> calls{0};
  const auto scorer = [&](std::span<const Triplet> batch) {
    ++calls;
    return std::vector<float>(batch.size(), 0.0f);
  };
  serve::MicroBatcher batcher(scorer, 4, std::chrono::microseconds(0));
  Triplet t{1, 0, 2};
  float out = -1.0f;
  const auto expired =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  EXPECT_EQ(batcher.try_execute({&t, 1}, &out, expired),
            serve::RejectReason::kDeadline);
  EXPECT_EQ(calls.load(), 0);  // shed before any work
  EXPECT_EQ(batcher.stats().rejected_deadline, 1);
  // The same request without a deadline executes normally.
  EXPECT_EQ(batcher.try_execute({&t, 1}, &out),
            serve::RejectReason::kNone);
  EXPECT_EQ(calls.load(), 1);
}

/// Scorer that blocks until released — lets a test pin the single
/// concurrency slot and observe the queue deterministically.
struct BlockingScorer {
  std::mutex mu;
  std::condition_variable cv;
  bool released = false;
  std::atomic<int> started{0};
  std::atomic<int> scored_triplets{0};

  serve::MicroBatcher::ScoreFn fn() {
    return [this](std::span<const Triplet> batch) {
      ++started;
      {
        std::unique_lock<std::mutex> lk(mu);
        cv.wait(lk, [&] { return released; });
      }
      scored_triplets += static_cast<int>(batch.size());
      std::vector<float> out(batch.size());
      for (std::size_t i = 0; i < batch.size(); ++i)
        out[i] = static_cast<float>(batch[i].head) * 0.5f;
      return out;
    };
  }
  void release() {
    std::lock_guard<std::mutex> lk(mu);
    released = true;
    cv.notify_all();
  }
  void wait_started() {
    while (started.load() == 0) std::this_thread::yield();
  }
};

TEST(MicroBatcherDegrade, BoundedQueueBouncesExcessLoadTyped) {
  BlockingScorer scorer;
  // One execution slot, queue bounded at 2 triplets.
  serve::MicroBatcher batcher(scorer.fn(), /*max_batch=*/1,
                              std::chrono::microseconds(0),
                              /*queue_limit=*/2, /*max_concurrent=*/1);
  Triplet a{2, 0, 0}, b{4, 0, 0}, c{6, 0, 0}, d{8, 0, 0};
  float oa = -1, ob = -1, oc = -1, od = -1;
  // Occupy the slot, then fill the queue behind it.
  std::thread ta([&] {
    EXPECT_EQ(batcher.try_execute({&a, 1}, &oa), serve::RejectReason::kNone);
  });
  scorer.wait_started();
  std::thread tb([&] {
    EXPECT_EQ(batcher.try_execute({&b, 1}, &ob), serve::RejectReason::kNone);
  });
  std::thread tc([&] {
    EXPECT_EQ(batcher.try_execute({&c, 1}, &oc), serve::RejectReason::kNone);
  });
  // b and c are queued (the slot is pinned); give them time to enqueue.
  while (batcher.stats().requests < 3) std::this_thread::yield();
  // The queue holds 2 triplets — the bound; the next arrival bounces, and
  // the typed path throws nothing while execute() raises the typed Error.
  EXPECT_EQ(batcher.try_execute({&d, 1}, &od),
            serve::RejectReason::kQueueFull);
  try {
    batcher.execute({&d, 1}, &od);
    FAIL() << "bounded queue should reject";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kQueueFull);
  }
  scorer.release();
  ta.join();
  tb.join();
  tc.join();
  // Everyone admitted was served exactly; the bounced request never ran.
  EXPECT_EQ(oa, 1.0f);
  EXPECT_EQ(ob, 2.0f);
  EXPECT_EQ(oc, 3.0f);
  EXPECT_EQ(od, -1.0f);
  EXPECT_EQ(batcher.stats().rejected_queue_full, 2);
  EXPECT_EQ(scorer.scored_triplets.load(), 3);
}

TEST(MicroBatcherDegrade, ExpiredWhileQueuedShedsWithoutExecuting) {
  BlockingScorer scorer;
  serve::MicroBatcher batcher(scorer.fn(), /*max_batch=*/4,
                              std::chrono::microseconds(0),
                              /*queue_limit=*/0, /*max_concurrent=*/1);
  Triplet a{2, 0, 0}, b{100, 0, 0};
  float oa = -1, ob = -1;
  std::thread ta([&] {
    EXPECT_EQ(batcher.try_execute({&a, 1}, &oa), serve::RejectReason::kNone);
  });
  scorer.wait_started();
  // The slot is pinned; a queued request whose deadline passes must shed
  // itself and return — no hang, no execution.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  EXPECT_EQ(batcher.try_execute({&b, 1}, &ob, deadline),
            serve::RejectReason::kDeadline);
  EXPECT_EQ(ob, -1.0f);
  scorer.release();
  ta.join();
  EXPECT_EQ(oa, 1.0f);
  EXPECT_EQ(scorer.scored_triplets.load(), 1);  // b never reached the scorer
  EXPECT_GE(batcher.stats().rejected_deadline, 1);
}

/// Minimal model whose score() costs real wall time — the "service
/// capacity" the oversubscription test saturates.
class SlowModel : public models::KgeModel {
 public:
  SlowModel(index_t entities, index_t relations)
      : KgeModel(entities, relations, models::ModelConfig{}) {}
  std::string name() const override { return "SlowModel"; }
  autograd::Variable loss(std::span<const Triplet>,
                          std::span<const Triplet>) override {
    throw Error("SlowModel is serve-only");
  }
  std::vector<float> score(std::span<const Triplet> batch) const override {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::vector<float> out(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i)
      out[i] = static_cast<float>(batch[i].head * 3 - batch[i].tail);
    return out;
  }
  std::vector<autograd::Variable> params() override { return {}; }
};

TEST(Serve, OversubscribedSessionShedsTypedAndServesExactly) {
  // Service capacity: one slot, 1 ms per execution, up to 4 triplets per
  // batch. Load: 8 threads issuing back-to-back 2-triplet requests — 4x
  // more outstanding triplets than the queue bound admits on a burst.
  auto model = std::make_shared<SlowModel>(100, 4);
  serve::SessionOptions so;
  so.micro_batch = true;
  so.max_batch = 4;
  so.queue_limit = 8;
  so.max_concurrency = 1;
  serve::InferenceSession session(model, so);

  constexpr int kThreads = 8;
  constexpr int kRounds = 25;
  constexpr std::int64_t kDeadlineUs = 300'000;  // generous: 300 ms
  std::atomic<std::int64_t> accepted{0}, queue_full{0}, deadline{0};
  std::atomic<bool> mismatch{false};
  std::vector<double> latencies[kThreads];
  std::vector<std::thread> pool;
  for (int w = 0; w < kThreads; ++w) {
    pool.emplace_back([&, w] {
      for (int i = 0; i < kRounds; ++i) {
        const Triplet q[2] = {{w, 0, i % 50}, {i % 100, 1, w}};
        const auto t0 = std::chrono::steady_clock::now();
        const auto result = session.try_score({q, 2}, kDeadlineUs);
        const double ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count();
        switch (result.rejected) {
          case serve::RejectReason::kNone: {
            ++accepted;
            latencies[w].push_back(ms);
            const auto expect = model->score({q, 2});
            if (result.scores != expect) mismatch = true;
            break;
          }
          case serve::RejectReason::kQueueFull:
            ++queue_full;
            break;
          case serve::RejectReason::kDeadline:
            ++deadline;
            break;
        }
      }
    });
  }
  for (auto& t : pool) t.join();

  // Typed accounting is complete: every request was served or shed.
  EXPECT_EQ(accepted + queue_full + deadline,
            static_cast<std::int64_t>(kThreads) * kRounds);
  // The burst exceeds slot + queue capacity, so the bounded queue sheds.
  EXPECT_GE(queue_full.load(), 1);
  // Somebody was served, and every served answer was bit-exact.
  EXPECT_GE(accepted.load(), 1);
  EXPECT_FALSE(mismatch.load());
  // Accepted requests met their deadline at p99.
  std::vector<double> all;
  for (const auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  if (!all.empty()) {
    const double p99 = all[static_cast<std::size_t>(
        0.99 * static_cast<double>(all.size() - 1))];
    EXPECT_LT(p99, static_cast<double>(kDeadlineUs) / 1000.0);
  }

  const auto stats = session.stats();
  EXPECT_EQ(stats.rejected, queue_full + deadline);
  EXPECT_EQ(stats.batcher.rejected_queue_full, queue_full);
  EXPECT_EQ(stats.batcher.rejected_deadline, deadline);
}

TEST(Serve, TryScoreMatchesScoreWhenUnloaded) {
  Fixture fx;
  auto session = fx.session();
  const auto queries = random_queries(fx.ds, 32, 9);
  const auto direct = session->score(queries);
  const auto result = session->try_score(queries, /*deadline_us=*/0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.scores, direct);
  // Out-of-range ids still throw (validation is not "degradation").
  const Triplet bad{fx.ds.num_entities(), 0, 0};
  EXPECT_THROW(session->try_score({&bad, 1}, 0), Error);
}

TEST(Serve, EngineHealthSurfacesDegradation) {
  Fixture fx;
  auto session = fx.session();
  session->score_one({1, 0, 2});
  std::string health = fx.engine.health_json();
  EXPECT_NE(health.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(health.find("\"sessions_open\": 1"), std::string::npos);
  EXPECT_NE(health.find("\"loaded\": true"), std::string::npos);

  // Injected serve_queue faults shed typed rejections; health flips.
  fault::install("serve_queue:fail@1");
  const Triplet probe{1, 0, 2};
  const auto rejected = session->try_score({&probe, 1}, 0);
  EXPECT_EQ(rejected.rejected, serve::RejectReason::kQueueFull);
  health = fx.engine.health_json();
  EXPECT_NE(health.find("\"status\": \"degraded\""), std::string::npos);
  EXPECT_NE(health.find("\"rejected\": 1"), std::string::npos);
  fault::clear();
}

}  // namespace
}  // namespace sptx
