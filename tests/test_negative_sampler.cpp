// Tests for the negative sampler (§5.3 pre-generation protocol).
#include <gtest/gtest.h>

#include "src/kg/negative_sampler.hpp"
#include "src/kg/synthetic.hpp"

namespace sptx {
namespace {

TripletStore toy_store() {
  return TripletStore(6, 2,
                      {{0, 0, 1}, {1, 0, 2}, {2, 1, 3}, {3, 1, 4}, {4, 0, 5}});
}

TEST(NegativeSampler, CorruptionChangesExactlyOneSlot) {
  const TripletStore store = toy_store();
  kg::NegativeSampler sampler(store, kg::CorruptionScheme::kUniform);
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const Triplet& pos = store[i % store.size()];
    const Triplet neg = sampler.corrupt(pos, rng);
    const bool head_changed = neg.head != pos.head;
    const bool tail_changed = neg.tail != pos.tail;
    EXPECT_EQ(neg.relation, pos.relation);
    EXPECT_TRUE(head_changed != tail_changed)
        << "exactly one of head/tail must change";
  }
}

TEST(NegativeSampler, NeverReturnsThePositive) {
  const TripletStore store = toy_store();
  kg::NegativeSampler sampler(store, kg::CorruptionScheme::kUniform);
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    const Triplet& pos = store[i % store.size()];
    EXPECT_FALSE(sampler.corrupt(pos, rng) == pos);
  }
}

TEST(NegativeSampler, FilteredAvoidsKnownPositives) {
  // Dense positive set: (0, 0, t) for every tail but one. A filtered
  // sampler corrupting tails must find the single non-positive.
  std::vector<Triplet> positives;
  for (std::int64_t t = 1; t < 6; ++t) positives.push_back({0, 0, t});
  TripletStore store(7, 1, std::move(positives));
  kg::NegativeSampler sampler(store, kg::CorruptionScheme::kUniform,
                              /*filtered=*/true);
  Rng rng(3);
  int false_negatives = 0;
  for (int i = 0; i < 300; ++i) {
    const Triplet neg = sampler.corrupt(store[0], rng);
    for (std::int64_t t = 1; t < 6; ++t) {
      if (neg == Triplet{0, 0, t}) ++false_negatives;
    }
  }
  // Bounded retries make this probabilistic but heavily suppressed.
  EXPECT_LT(false_negatives, 5);
}

TEST(NegativeSampler, PregenerateAlignsWithPositives) {
  const TripletStore store = toy_store();
  kg::NegativeSampler sampler(store, kg::CorruptionScheme::kUniform);
  Rng rng(4);
  const auto negatives = sampler.pregenerate(store.triplets(), rng);
  ASSERT_EQ(negatives.size(), static_cast<std::size_t>(store.size()));
  for (std::size_t i = 0; i < negatives.size(); ++i) {
    EXPECT_EQ(negatives[i].relation, store[static_cast<std::int64_t>(i)]
                                         .relation);
  }
}

TEST(NegativeSampler, BernoulliPrefersHeadForOneToMany) {
  // Relation 0 is 1-to-N (head 0 points to many tails): tph >> hpt, so the
  // Bernoulli scheme should corrupt the HEAD most of the time (reduces
  // false negatives on the tail side).
  std::vector<Triplet> positives;
  for (std::int64_t t = 1; t <= 20; ++t) positives.push_back({0, 0, t});
  TripletStore store(40, 1, std::move(positives));
  kg::NegativeSampler sampler(store, kg::CorruptionScheme::kBernoulli);
  Rng rng(5);
  int head_corruptions = 0;
  const int trials = 1000;
  for (int i = 0; i < trials; ++i) {
    const Triplet neg = sampler.corrupt(store[0], rng);
    if (neg.head != 0) ++head_corruptions;
  }
  EXPECT_GT(head_corruptions, trials * 3 / 4);
}

TEST(NegativeSampler, BernoulliPrefersTailForManyToOne) {
  std::vector<Triplet> positives;
  for (std::int64_t h = 1; h <= 20; ++h) positives.push_back({h, 0, 0});
  TripletStore store(40, 1, std::move(positives));
  kg::NegativeSampler sampler(store, kg::CorruptionScheme::kBernoulli);
  Rng rng(6);
  int tail_corruptions = 0;
  const int trials = 1000;
  for (int i = 0; i < trials; ++i) {
    const Triplet neg = sampler.corrupt(store[0], rng);
    if (neg.tail != 0) ++tail_corruptions;
  }
  EXPECT_GT(tail_corruptions, trials * 3 / 4);
}

TEST(NegativeSampler, DeterministicGivenSeed) {
  const TripletStore store = toy_store();
  kg::NegativeSampler sampler(store, kg::CorruptionScheme::kUniform);
  Rng rng1(7), rng2(7);
  const auto a = sampler.pregenerate(store.triplets(), rng1);
  const auto b = sampler.pregenerate(store.triplets(), rng2);
  EXPECT_EQ(a, b);
}

TEST(NegativeSampler, FilteredKeysExactBeyond21Bits) {
  // Regression: the filtered sampler used to pack (h, r, t) into one 64-bit
  // word with 21-bit shifts and XOR, so ids ≥ 2^21 aliased — e.g. the key of
  // (h, 1, 0) equalled the key of (h, 0, 2^21), making the sampler reject
  // valid negatives and admit false ones at scale. Keys are now the full
  // triplet, so membership must be exact for ids of any magnitude.
  const std::int64_t big = std::int64_t{1} << 21;
  std::vector<Triplet> positives = {{5, 1, 0}, {big + 7, 2, big + 9}};
  TripletStore store(big + 16, 4, std::move(positives));
  kg::NegativeSampler sampler(store, kg::CorruptionScheme::kUniform,
                              /*filtered=*/true);
  EXPECT_TRUE(sampler.is_positive({5, 1, 0}));
  EXPECT_TRUE(sampler.is_positive({big + 7, 2, big + 9}));
  // Old packed-key collision partners must NOT read as positives.
  EXPECT_FALSE(sampler.is_positive({5, 0, big}));      // r bit ↔ t bit alias
  EXPECT_FALSE(sampler.is_positive({5, 1, big}));
  EXPECT_FALSE(sampler.is_positive({big + 7, 2, 9}));  // high bits dropped
  EXPECT_FALSE(sampler.is_positive({7, 2, big + 9}));
}

TEST(NegativeSampler, FilteredCorruptionAtLargeIdScale) {
  // Dense positive block living entirely above 2^21: filtered corruption
  // must still avoid regenerating any of them.
  const std::int64_t base = (std::int64_t{1} << 21) + 100;
  std::vector<Triplet> positives;
  for (std::int64_t t = 0; t < 5; ++t)
    positives.push_back({base, 0, base + 1 + t});
  TripletStore store(base + 10, 1, std::move(positives));
  kg::NegativeSampler sampler(store, kg::CorruptionScheme::kUniform,
                              /*filtered=*/true);
  Rng rng(17);
  int false_negatives = 0;
  for (int i = 0; i < 300; ++i) {
    const Triplet neg = sampler.corrupt(store[0], rng);
    if (sampler.is_positive(neg)) ++false_negatives;
  }
  EXPECT_LT(false_negatives, 5);  // bounded retries keep this tiny
}

TEST(NegativeSampler, StoreFreeUniformMatchesStoreBacked) {
  const TripletStore store = toy_store();
  kg::NegativeSampler with_store(store, kg::CorruptionScheme::kUniform);
  kg::NegativeSampler store_free(store.num_entities(), store.num_relations(),
                                 kg::CorruptionScheme::kUniform);
  Rng rng1(21), rng2(21);
  EXPECT_EQ(with_store.pregenerate(store.triplets(), rng1),
            store_free.pregenerate(store.triplets(), rng2));
}

TEST(NegativeSampler, StoreFreeRejectsBernoulli) {
  EXPECT_THROW(
      kg::NegativeSampler(10, 2, kg::CorruptionScheme::kBernoulli), Error);
}

TEST(NegativeSampler, TooFewEntitiesThrows) {
  TripletStore store(1, 1, {{0, 0, 0}});
  EXPECT_THROW(
      kg::NegativeSampler(store, kg::CorruptionScheme::kUniform), Error);
}

TEST(NegativeSampler, UniformCorruptsBothSidesRoughlyEqually) {
  const TripletStore store = toy_store();
  kg::NegativeSampler sampler(store, kg::CorruptionScheme::kUniform);
  Rng rng(8);
  int heads = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    const Triplet neg = sampler.corrupt(store[0], rng);
    if (neg.head != store[0].head) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / trials, 0.5, 0.06);
}

}  // namespace
}  // namespace sptx
