// Fused-kernel acceptance suite (src/kernels, SPTX_FUSED).
//
//  * fused-vs-autograd loss AND per-parameter gradient equivalence for all
//    11 model families (FP tolerance — SIMD reorders additions);
//  * finite-difference gradcheck of the fused path's analytic gradients;
//  * SPTX_FUSED=off bit-identity with a hand-composed legacy graph;
//  * the kFusedBatches counter proves which path actually ran;
//  * steady-state training through the fused path performs zero tracked
//    heap allocations (the Workspace-pool property of the legacy path).
//
// CMake registers this suite twice — once as-is and once with
// SPTX_NO_SIMD=1 — so both sides of the AVX2/scalar dispatch are covered on
// every machine.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/autograd/ops.hpp"
#include "src/kernels/fused.hpp"
#include "src/kg/dataset.hpp"
#include "src/kg/negative_sampler.hpp"
#include "src/kg/synthetic.hpp"
#include "src/models/model.hpp"
#include "src/profiling/counters.hpp"
#include "src/tensor/memory_tracker.hpp"
#include "src/train/trainer.hpp"

namespace sptx {
namespace {

constexpr const char* kAllModels[] = {"TransE",   "TransR", "TransH",
                                      "TorusE",   "TransD", "TransA",
                                      "TransC",   "TransM", "DistMult",
                                      "ComplEx",  "RotatE"};
constexpr const char* kFusedModels[] = {"TransE", "TransR", "TransH",
                                        "TorusE", "TransD", "TransA",
                                        "TransC", "TransM"};

models::ModelConfig small_config(models::Dissimilarity diss) {
  models::ModelConfig cfg;
  cfg.dim = 12;  // even: ComplEx/RotatE interleave (re, im)
  cfg.rel_dim = 6;
  cfg.margin = 5.0f;  // hinge active for every pair: smooth for comparisons
  cfg.dissimilarity = diss;
  return cfg;
}

struct Batches {
  std::vector<Triplet> pos;
  std::vector<Triplet> neg;
};

Batches make_batches(index_t n, index_t r, std::uint64_t seed,
                     std::size_t count) {
  Rng rng(seed);
  kg::Dataset ds = kg::generate({"fused", n, r, 400}, rng, 0.0, 0.0);
  kg::NegativeSampler sampler(ds.train, kg::CorruptionScheme::kUniform);
  Batches b;
  b.pos.assign(ds.train.triplets().begin(),
               ds.train.triplets().begin() +
                   static_cast<std::ptrdiff_t>(count));
  std::vector<Triplet> all(ds.train.triplets().begin(),
                           ds.train.triplets().end());
  const auto neg = sampler.pregenerate(all, rng);
  b.neg.assign(neg.begin(), neg.begin() + static_cast<std::ptrdiff_t>(count));
  return b;
}

std::unique_ptr<models::KgeModel> fresh(const std::string& name, index_t n,
                                        index_t r,
                                        const models::ModelConfig& cfg,
                                        std::uint64_t seed) {
  Rng rng(seed);
  return models::make_sparse_model(name, n, r, cfg, rng);
}

// ---- fused vs autograd: loss and gradients --------------------------------

class FusedEquivalenceTest
    : public ::testing::TestWithParam<const char*> {};

void expect_equivalent(const std::string& name, models::Dissimilarity diss) {
  constexpr index_t kN = 40, kR = 5;
  const models::ModelConfig cfg = small_config(diss);
  const Batches b = make_batches(kN, kR, 11, 64);

  auto run = [&](const char* mode) {
    config::ScopedOverride fused("SPTX_FUSED", mode);
    auto model = fresh(name, kN, kR, cfg, 7);
    autograd::Variable loss = model->loss(b.pos, b.neg);
    loss.backward();
    std::vector<Matrix> grads;
    for (auto& p : model->params()) grads.push_back(p.grad());
    return std::make_pair(loss.value().at(0, 0), std::move(grads));
  };

  const auto [loss_off, grads_off] = run("off");
  const auto [loss_on, grads_on] = run("on");

  EXPECT_NEAR(loss_on, loss_off, 1e-4f * (1.0f + std::fabs(loss_off)))
      << name;
  ASSERT_EQ(grads_on.size(), grads_off.size()) << name;
  for (std::size_t k = 0; k < grads_on.size(); ++k) {
    ASSERT_TRUE(grads_on[k].same_shape(grads_off[k])) << name;
    for (index_t i = 0; i < grads_on[k].size(); ++i) {
      const float a = grads_on[k].data()[i];
      const float e = grads_off[k].data()[i];
      EXPECT_NEAR(a, e, 2e-4f * (1.0f + std::fabs(e)))
          << name << " param " << k << " flat index " << i;
    }
  }
}

TEST_P(FusedEquivalenceTest, LossAndGradientsMatchAutogradL2) {
  expect_equivalent(GetParam(), models::Dissimilarity::kL2);
}

TEST_P(FusedEquivalenceTest, LossAndGradientsMatchAutogradL1) {
  expect_equivalent(GetParam(), models::Dissimilarity::kL1);
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, FusedEquivalenceTest,
                         ::testing::ValuesIn(kAllModels));

// ---- gradcheck of the fused analytic gradients ----------------------------

class FusedGradcheckTest : public ::testing::TestWithParam<const char*> {};

TEST_P(FusedGradcheckTest, AnalyticMatchesFiniteDifferences) {
  // Checks d(Σ scores)/d(param) for every parameter entry against central
  // finite differences, through the fused path. The score sum avoids the
  // margin hinge so FD stays smooth; RotatE's relation block is excluded
  // (its analytic rule is the standard projected-gradient approximation,
  // deliberately not the FD gradient).
  const std::string name = GetParam();
  constexpr index_t kN = 10, kR = 3;
  const models::ModelConfig cfg = small_config(models::Dissimilarity::kL2);
  const Batches b = make_batches(kN, kR, 13, 12);
  config::ScopedOverride fused("SPTX_FUSED", "on");

  auto model = fresh(name, kN, kR, cfg, 21);
  auto* scoring = dynamic_cast<models::ScoringCoreModel*>(model.get());
  ASSERT_NE(scoring, nullptr);

  autograd::Variable loss = autograd::sum_all(scoring->distance(b.pos));
  loss.backward();

  auto params = model->params();
  const float eps = 1e-3f;
  const float tol = 2e-2f;
  for (std::size_t k = 0; k < params.size(); ++k) {
    const Matrix analytic = params[k].grad();
    Matrix& values = params[k].mutable_value();
    const bool skip_relation_rows = name == "RotatE" && k == 0;
    for (index_t i = 0; i < values.size(); ++i) {
      if (skip_relation_rows && i / values.cols() >= kN) continue;
      // Numeric side re-runs the same ranking-ready forward (similarity
      // models negate inside distance(), score() keeps the natural sign).
      const auto column_sum = [&]() {
        const Matrix col = scoring->distance(b.pos).value();
        double acc = 0.0;  // double: keeps FD from drowning in cancellation
        for (index_t row = 0; row < col.rows(); ++row) acc += col.at(row, 0);
        return acc;
      };
      const float saved = values.data()[i];
      values.data()[i] = saved + eps;
      const double lp = column_sum();
      values.data()[i] = saved - eps;
      const double lm = column_sum();
      values.data()[i] = saved;
      const float numeric =
          static_cast<float>((lp - lm) / (2.0 * static_cast<double>(eps)));
      EXPECT_NEAR(analytic.data()[i], numeric,
                  tol * (1.0f + std::fabs(numeric)))
          << name << " param " << k << " flat index " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, FusedGradcheckTest,
                         ::testing::ValuesIn(kAllModels));

// ---- SPTX_FUSED=off is bit-identical to the hand-built legacy graph ------

TEST(FusedKernels, OffModeIsBitIdenticalToLegacyGraph) {
  constexpr index_t kN = 30, kR = 4;
  const models::ModelConfig cfg = small_config(models::Dissimilarity::kL2);
  const Batches b = make_batches(kN, kR, 17, 32);
  config::ScopedOverride fused("SPTX_FUSED", "off");

  for (const char* name : kFusedModels) {
    auto via_api = fresh(name, kN, kR, cfg, 9);
    autograd::Variable l1 = via_api->loss(b.pos, b.neg);
    l1.backward();

    auto by_hand = fresh(name, kN, kR, cfg, 9);
    auto* scoring = dynamic_cast<models::ScoringCoreModel*>(by_hand.get());
    ASSERT_NE(scoring, nullptr) << name;
    const auto pp = sparse::CompiledBatch::compile(
        b.pos, scoring->recipe(), kN, kR, /*copy_triplets=*/false);
    const auto np = sparse::CompiledBatch::compile(
        b.neg, scoring->recipe(), kN, kR, /*copy_triplets=*/false);
    autograd::Variable l2 =
        models::ranking_loss(scoring->forward(*pp), scoring->forward(*np),
                             cfg);
    l2.backward();

    EXPECT_EQ(l1.value().at(0, 0), l2.value().at(0, 0)) << name;
    auto p1 = via_api->params();
    auto p2 = by_hand->params();
    ASSERT_EQ(p1.size(), p2.size()) << name;
    for (std::size_t k = 0; k < p1.size(); ++k) {
      for (index_t i = 0; i < p1[k].grad().size(); ++i) {
        EXPECT_EQ(p1[k].grad().data()[i], p2[k].grad().data()[i])
            << name << " param " << k << " flat index " << i;
      }
    }
  }
}

// ---- the knob really routes the path --------------------------------------

TEST(FusedKernels, CounterProvesDispatch) {
  constexpr index_t kN = 30, kR = 4;
  const models::ModelConfig cfg = small_config(models::Dissimilarity::kL2);
  const Batches b = make_batches(kN, kR, 19, 16);
  {
    config::ScopedOverride fused("SPTX_FUSED", "auto");
    auto model = fresh("TransE", kN, kR, cfg, 3);
    profiling::CounterWindow window(profiling::Counter::kFusedBatches);
    model->loss(b.pos, b.neg).backward();
    EXPECT_EQ(window.elapsed(), 2);  // one fused node per score column
  }
  {
    config::ScopedOverride fused("SPTX_FUSED", "off");
    auto model = fresh("TransE", kN, kR, cfg, 3);
    profiling::CounterWindow window(profiling::Counter::kFusedBatches);
    model->loss(b.pos, b.neg).backward();
    EXPECT_EQ(window.elapsed(), 0);
  }
  {
    // Families without fused kernels fall back silently under auto.
    config::ScopedOverride fused("SPTX_FUSED", "auto");
    auto model = fresh("DistMult", kN, kR, cfg, 3);
    profiling::CounterWindow window(profiling::Counter::kFusedBatches);
    model->loss(b.pos, b.neg).backward();
    EXPECT_EQ(window.elapsed(), 0);
  }
}

// ---- score() dispatch --------------------------------------------------

TEST(FusedKernels, ScorePathMatchesLegacyScore) {
  constexpr index_t kN = 40, kR = 5;
  const Batches b = make_batches(kN, kR, 23, 48);
  for (const char* name : kFusedModels) {
    for (const auto diss :
         {models::Dissimilarity::kL2, models::Dissimilarity::kL1}) {
      const models::ModelConfig cfg = small_config(diss);
      auto model = fresh(name, kN, kR, cfg, 5);
      std::vector<float> legacy, fused;
      {
        config::ScopedOverride off("SPTX_FUSED", "off");
        legacy = model->score(b.pos);
      }
      {
        config::ScopedOverride on("SPTX_FUSED", "on");
        fused = model->score(b.pos);
      }
      ASSERT_EQ(legacy.size(), fused.size()) << name;
      for (std::size_t i = 0; i < legacy.size(); ++i) {
        EXPECT_NEAR(fused[i], legacy[i],
                    1e-4f * (1.0f + std::fabs(legacy[i])))
            << name << " row " << i;
      }
    }
  }
}

// ---- zero-allocation steady state -----------------------------------------

TEST(FusedKernels, SteadyStateTrainingPerformsZeroAllocations) {
  config::ScopedOverride fused("SPTX_FUSED", "on");
  Rng rng(5);
  kg::Dataset ds = kg::generate({"fws", 120, 6, 1200}, rng, 0.0, 0.0);
  for (const char* name : {"TransE", "TransR", "TorusE", "TransH"}) {
    models::ModelConfig cfg;
    cfg.dim = 16;
    cfg.rel_dim = 8;
    Rng mr(6);
    auto model = models::make_sparse_model(name, ds.num_entities(),
                                           ds.num_relations(), cfg, mr);
    train::TrainConfig tc;
    tc.epochs = 4;
    tc.batch_size = 256;
    std::vector<std::int64_t> allocs_per_epoch;
    train::train(*model, ds.train, tc, [&](int, float) {
      allocs_per_epoch.push_back(MemoryTracker::instance().total_allocs());
    });
    ASSERT_EQ(allocs_per_epoch.size(), 4u);
    EXPECT_EQ(allocs_per_epoch[1], allocs_per_epoch[0]) << name;
    EXPECT_EQ(allocs_per_epoch[2], allocs_per_epoch[1]) << name;
    EXPECT_EQ(allocs_per_epoch[3], allocs_per_epoch[2]) << name;
  }
}

// ---- training through the fused path behaves -------------------------------

TEST(FusedKernels, FusedTrainingConvergesLikeAutograd) {
  // End-to-end: same seed, same data, fused vs autograd runs reach closely
  // matching loss trajectories (tolerance: FP reassociation compounds over
  // steps).
  Rng rng(31);
  kg::Dataset ds = kg::generate({"fconv", 80, 4, 600}, rng, 0.0, 0.0);
  for (const char* name : {"TransE", "TransR", "TorusE"}) {
    models::ModelConfig cfg;
    cfg.dim = 16;
    cfg.rel_dim = 8;
    train::TrainConfig tc;
    tc.epochs = 3;
    tc.batch_size = 128;
    tc.lr = 0.05f;
    std::vector<float> loss_fused, loss_auto;
    {
      config::ScopedOverride fused("SPTX_FUSED", "on");
      Rng mr(8);
      auto model = models::make_sparse_model(name, ds.num_entities(),
                                             ds.num_relations(), cfg, mr);
      loss_fused = train::train(*model, ds.train, tc).epoch_loss;
    }
    {
      config::ScopedOverride fused("SPTX_FUSED", "off");
      Rng mr(8);
      auto model = models::make_sparse_model(name, ds.num_entities(),
                                             ds.num_relations(), cfg, mr);
      loss_auto = train::train(*model, ds.train, tc).epoch_loss;
    }
    ASSERT_EQ(loss_fused.size(), loss_auto.size()) << name;
    for (std::size_t e = 0; e < loss_fused.size(); ++e) {
      EXPECT_NEAR(loss_fused[e], loss_auto[e],
                  1e-3f * (1.0f + std::fabs(loss_auto[e])))
          << name << " epoch " << e;
    }
    EXPECT_LT(loss_fused.back(), loss_fused.front()) << name;
  }
}

}  // namespace
}  // namespace sptx
