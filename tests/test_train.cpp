// Tests for the training loop (§5.3 protocol).
#include <gtest/gtest.h>

#include <cmath>
#include <algorithm>

#include "src/kg/synthetic.hpp"
#include "src/models/model.hpp"
#include "src/train/trainer.hpp"

namespace sptx {
namespace {

kg::Dataset small_dataset(std::uint64_t seed = 31) {
  Rng rng(seed);
  return kg::generate({"train-toy", 80, 6, 600}, rng, 0.0, 0.0);
}

models::ModelConfig cfg16() {
  models::ModelConfig cfg;
  cfg.dim = 16;
  cfg.rel_dim = 8;
  return cfg;
}

TEST(Trainer, RecordsLossPerEpoch) {
  const kg::Dataset ds = small_dataset();
  Rng rng(1);
  auto model = models::make_sparse_model("TransE", 80, 6, cfg16(), rng);
  train::TrainConfig tc;
  tc.epochs = 5;
  tc.batch_size = 128;
  tc.lr = 0.05f;
  const train::TrainResult result = train::train(*model, ds.train, tc);
  EXPECT_EQ(result.epoch_loss.size(), 5u);
  for (float l : result.epoch_loss) EXPECT_TRUE(std::isfinite(l));
}

TEST(Trainer, LossDecreasesOverEpochs) {
  const kg::Dataset ds = small_dataset();
  Rng rng(2);
  auto model = models::make_sparse_model("TransE", 80, 6, cfg16(), rng);
  train::TrainConfig tc;
  tc.epochs = 15;
  tc.batch_size = 128;
  tc.lr = 0.05f;
  const train::TrainResult result = train::train(*model, ds.train, tc);
  EXPECT_LT(result.epoch_loss.back(), result.epoch_loss.front());
}

TEST(Trainer, PhaseTimesAreAllPopulated) {
  const kg::Dataset ds = small_dataset();
  Rng rng(3);
  auto model = models::make_sparse_model("TransE", 80, 6, cfg16(), rng);
  train::TrainConfig tc;
  tc.epochs = 3;
  tc.batch_size = 128;
  const train::TrainResult result = train::train(*model, ds.train, tc);
  EXPECT_GT(result.phases.forward_s, 0.0);
  EXPECT_GT(result.phases.backward_s, 0.0);
  EXPECT_GT(result.phases.step_s, 0.0);
  EXPECT_GE(result.total_seconds, result.phases.total() * 0.5);
  EXPECT_GT(result.flops, 0);
  EXPECT_GT(result.peak_bytes, 0);
}

TEST(Trainer, EpochCallbackFires) {
  const kg::Dataset ds = small_dataset();
  Rng rng(4);
  auto model = models::make_sparse_model("TransE", 80, 6, cfg16(), rng);
  train::TrainConfig tc;
  tc.epochs = 4;
  tc.batch_size = 256;
  int calls = 0;
  train::train(*model, ds.train, tc, [&](int epoch, float loss) {
    EXPECT_EQ(epoch, calls);
    EXPECT_TRUE(std::isfinite(loss));
    ++calls;
  });
  EXPECT_EQ(calls, 4);
}

TEST(Trainer, DeterministicGivenSeed) {
  const kg::Dataset ds = small_dataset();
  train::TrainConfig tc;
  tc.epochs = 3;
  tc.batch_size = 128;
  tc.seed = 99;
  Rng rng1(5), rng2(5);
  auto m1 = models::make_sparse_model("TransE", 80, 6, cfg16(), rng1);
  auto m2 = models::make_sparse_model("TransE", 80, 6, cfg16(), rng2);
  const auto r1 = train::train(*m1, ds.train, tc);
  const auto r2 = train::train(*m2, ds.train, tc);
  ASSERT_EQ(r1.epoch_loss.size(), r2.epoch_loss.size());
  for (std::size_t i = 0; i < r1.epoch_loss.size(); ++i)
    EXPECT_FLOAT_EQ(r1.epoch_loss[i], r2.epoch_loss[i]);
}

TEST(Trainer, BatchSizeLargerThanDatasetIsOneBatch) {
  const kg::Dataset ds = small_dataset();
  Rng rng(6);
  auto model = models::make_sparse_model("TransE", 80, 6, cfg16(), rng);
  train::TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 1 << 20;
  const auto result = train::train(*model, ds.train, tc);
  EXPECT_EQ(result.epoch_loss.size(), 2u);
}

TEST(Trainer, AdagradPathWorks) {
  const kg::Dataset ds = small_dataset();
  Rng rng(7);
  auto model = models::make_sparse_model("TransE", 80, 6, cfg16(), rng);
  train::TrainConfig tc;
  tc.epochs = 8;
  tc.batch_size = 128;
  tc.use_adagrad = true;
  tc.lr = 0.1f;
  const auto result = train::train(*model, ds.train, tc);
  EXPECT_LT(result.epoch_loss.back(), result.epoch_loss.front());
}

TEST(Trainer, StepScheduleReducesLr) {
  // With an aggressive decay the later epochs barely move: compare loss
  // drop in the first vs second half.
  const kg::Dataset ds = small_dataset();
  Rng rng(8);
  auto model = models::make_sparse_model("TransE", 80, 6, cfg16(), rng);
  train::TrainConfig tc;
  tc.epochs = 10;
  tc.batch_size = 128;
  tc.schedule = train::LrSchedule::kStep;
  tc.step_lr_every = 2;
  tc.step_lr_gamma = 0.1f;
  tc.lr = 0.05f;
  const auto result = train::train(*model, ds.train, tc);
  const float early_drop = result.epoch_loss[0] - result.epoch_loss[4];
  const float late_drop = result.epoch_loss[5] - result.epoch_loss[9];
  EXPECT_GT(early_drop, late_drop);
}

TEST(Trainer, CosineScheduleRuns) {
  const kg::Dataset ds = small_dataset();
  Rng rng(9);
  auto model = models::make_sparse_model("TorusE", 80, 6, cfg16(), rng);
  train::TrainConfig tc;
  tc.epochs = 5;
  tc.batch_size = 256;
  tc.schedule = train::LrSchedule::kCosine;
  const auto result = train::train(*model, ds.train, tc);
  EXPECT_EQ(result.epoch_loss.size(), 5u);
}

TEST(Trainer, EmptyDatasetThrows) {
  TripletStore empty(5, 2, {});
  Rng rng(10);
  auto model = models::make_sparse_model("TransE", 5, 2, cfg16(), rng);
  train::TrainConfig tc;
  EXPECT_THROW(train::train(*model, empty, tc), Error);
}

TEST(Trainer, FilteredNegativesConfigWorks) {
  const kg::Dataset ds = small_dataset();
  Rng rng(11);
  auto model = models::make_sparse_model("TransE", 80, 6, cfg16(), rng);
  train::TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 128;
  tc.filtered_negatives = true;
  tc.corruption = kg::CorruptionScheme::kBernoulli;
  const auto result = train::train(*model, ds.train, tc);
  EXPECT_EQ(result.epoch_loss.size(), 2u);
}

}  // namespace
}  // namespace sptx
