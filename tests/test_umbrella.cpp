// Compile-and-smoke test for the umbrella header: a complete miniature
// workflow using only #include "src/sptransx.hpp".
#include <gtest/gtest.h>

#include "src/sptransx.hpp"

namespace sptx {
namespace {

TEST(Umbrella, FullWorkflowCompilesAndRuns) {
  Rng rng(1);
  kg::Dataset ds = kg::generate({"umbrella", 40, 3, 250}, rng, 0.0, 0.1);

  models::ModelConfig cfg;
  cfg.dim = 8;
  Rng mr(2);
  auto model = models::make_sparse_model("TransE", ds.num_entities(),
                                         ds.num_relations(), cfg, mr);

  train::TrainConfig tc;
  tc.epochs = 3;
  tc.batch_size = 64;
  const auto result = train::train(*model, ds.train, tc);
  EXPECT_EQ(result.epoch_loss.size(), 3u);

  eval::EvalConfig ec;
  ec.max_queries = 5;
  const auto metrics = eval::evaluate(*model, ds, ec);
  EXPECT_GT(metrics.queries, 0);

  const std::string path = ::testing::TempDir() + "/umbrella.sptxc";
  models::save_checkpoint(*model, path);
  models::load_checkpoint(*model, path);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sptx
