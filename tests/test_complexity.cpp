// Appendix B/C property tests: the sparse formulation's cost is
// O(M·d) — linear in triplets and embedding dim, and INDEPENDENT of the
// entity count and of graph density. FLOP counters make these properties
// deterministic (no flaky wall-clock assertions).
#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/profiling/flops.hpp"
#include "src/sparse/incidence.hpp"
#include "src/sparse/spmm.hpp"

namespace sptx {
namespace {

std::vector<Triplet> random_batch(index_t m, index_t n, index_t r,
                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Triplet> batch;
  for (index_t i = 0; i < m; ++i) {
    batch.push_back({static_cast<std::int64_t>(
                         rng.next_below(static_cast<std::uint64_t>(n))),
                     static_cast<std::int64_t>(
                         rng.next_below(static_cast<std::uint64_t>(r))),
                     static_cast<std::int64_t>(rng.next_below(
                         static_cast<std::uint64_t>(n)))});
  }
  return batch;
}

std::int64_t forward_flops(index_t m, index_t n, index_t r, index_t d) {
  const auto batch = random_batch(m, n, r, 42);
  const Csr a = build_hrt_incidence_csr(batch, n, r);
  Rng rng(7);
  Matrix x(n + r, d);
  x.fill_uniform(rng, -1, 1);
  profiling::FlopWindow window;
  const Matrix c = spmm_csr(a, x);
  return window.elapsed();
}

TEST(Complexity, FlopsLinearInTripletCount) {
  const std::int64_t f1 = forward_flops(1000, 500, 10, 32);
  const std::int64_t f4 = forward_flops(4000, 500, 10, 32);
  EXPECT_EQ(f4, 4 * f1);
}

TEST(Complexity, FlopsLinearInEmbeddingDim) {
  const std::int64_t f32 = forward_flops(1000, 500, 10, 32);
  const std::int64_t f128 = forward_flops(1000, 500, 10, 128);
  EXPECT_EQ(f128, 4 * f32);
}

TEST(Complexity, FlopsIndependentOfEntityCount) {
  // Appendix C: "the algorithmic complexity will not be affected by the
  // number of entities/relations."
  const std::int64_t small_n = forward_flops(2000, 100, 10, 64);
  const std::int64_t large_n = forward_flops(2000, 100000, 10, 64);
  EXPECT_EQ(small_n, large_n);
}

TEST(Complexity, SparsityIndependentOfGraphDensity) {
  // Appendix B: even a COMPLETE graph yields 3 nnz per incidence row,
  // because A is triplet-per-row, not adjacency.
  const index_t n = 20;
  std::vector<Triplet> complete;
  for (index_t h = 0; h < n; ++h) {
    for (index_t t = 0; t < n; ++t) {
      if (h != t) complete.push_back({h, 0, t});
    }
  }
  const Csr a = build_hrt_incidence_csr(complete, n, 1);
  for (index_t i = 0; i < a.rows; ++i) EXPECT_EQ(a.row_nnz(i), 3);
  const double density =
      static_cast<double>(a.nnz()) /
      (static_cast<double>(a.rows) * static_cast<double>(a.cols));
  EXPECT_LT(density, 3.0 / static_cast<double>(n));
}

TEST(Complexity, BackwardFlopsMatchForward) {
  // Appendix G: backward is another SpMM of the same shape → same FLOPs.
  const auto batch = random_batch(1500, 300, 8, 48);
  const Csr a = build_hrt_incidence_csr(batch, 300, 8);
  Rng rng(7);
  Matrix x(308, 48);
  x.fill_uniform(rng, -1, 1);
  profiling::FlopWindow fwd_window;
  const Matrix c = spmm_csr(a, x);
  const std::int64_t fwd = fwd_window.elapsed();
  Matrix g(c.rows(), c.cols());
  g.fill(0.5f);
  Matrix dx(x.rows(), x.cols());
  profiling::FlopWindow bwd_window;
  spmm_csr_transposed_accumulate(a, g, dx);
  EXPECT_EQ(bwd_window.elapsed(), fwd);
}

}  // namespace
}  // namespace sptx
