// Tests for src/runtime/: the process-wide work-stealing TaskPool.
//
// Covers the contracts the migrated call sites lean on:
//  * parallel_for visits every index exactly once for any (n, grain),
//    including after resize() and with nested regions inside submitted
//    tasks (deadlock freedom by caller-driven regions).
//  * Tiny trip counts (n <= grain) run inline — zero tasks submitted, so
//    a hot loop over small rows never pays a pool round-trip.
//  * submit()/TaskGroup::wait() retires every task and rethrows the first
//    task exception; the pool stays usable afterwards.
//  * Pool-vs-legacy DDP training is bit-identical (SPTX_RUNTIME=legacy is
//    a real escape hatch, not a similar-but-different code path).
//  * Stats gauges: queue depth drains to zero at idle, steal_ratio stays
//    in [0, 1], stats_json carries the health-surface keys.
//  * A TSan hammer: external threads submit and drive regions against a
//    resized pool concurrently (CI runs this under SPTX_SANITIZE=thread).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/common/runtime_config.hpp"
#include "src/distributed/ddp.hpp"
#include "src/kg/synthetic.hpp"
#include "src/profiling/counters.hpp"
#include "src/runtime/parallel.hpp"
#include "src/runtime/task_pool.hpp"

namespace sptx {
namespace {

using runtime::TaskClass;
using runtime::TaskGroup;
using runtime::TaskPool;

/// queue_depth counts stale region tickets too — a completed parallel_for
/// leaves tickets queued until a worker pops one, sees the region retired,
/// and drops it. The gauge therefore converges to zero shortly after the
/// pool goes idle rather than synchronously with the region's completion.
std::int64_t idle_queue_depth(TaskPool& pool) {
  for (int spin = 0; spin < 2000; ++spin) {
    const auto depth = pool.stats().queue_depth;
    if (depth == 0) return 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pool.stats().queue_depth;
}

/// Every runtime test runs with an explicit pool width so results do not
/// depend on the host's core count (CI spans 1-core VMs to 8-core runners).
class RuntimeTest : public ::testing::Test {
 protected:
  void SetUp() override { TaskPool::instance().resize(4); }
  void TearDown() override { TaskPool::instance().resize(1); }
};

TEST_F(RuntimeTest, ParallelForVisitsEveryIndexExactlyOnce) {
  const struct {
    std::int64_t n;
    std::int64_t grain;
  } cases[] = {{1, 1}, {7, 2}, {64, 64}, {1000, 16}, {1000, 1}, {4096, 512}};
  for (const auto& c : cases) {
    std::vector<std::atomic<int>> visits(static_cast<std::size_t>(c.n));
    runtime::parallel_for(
        0, c.n,
        [&](std::int64_t i) { visits[static_cast<std::size_t>(i)]++; },
        c.grain);
    for (std::int64_t i = 0; i < c.n; ++i) {
      EXPECT_EQ(visits[static_cast<std::size_t>(i)].load(), 1)
          << "n=" << c.n << " grain=" << c.grain << " i=" << i;
    }
  }
}

TEST_F(RuntimeTest, TinyTripCountsRunInlineWithZeroPoolRoundTrips) {
  config::ScopedOverride pool("SPTX_RUNTIME", "pool");
  profiling::CounterWindow submitted(
      profiling::Counter::kRuntimeTasksSubmitted);
  profiling::CounterWindow inlined(profiling::Counter::kRuntimeInlineLoops);
  std::int64_t sum = 0;
  runtime::parallel_for(0, 32, [&](std::int64_t i) { sum += i; },
                        /*grain=*/64);  // n < grain: must not touch the pool
  EXPECT_EQ(sum, 31 * 32 / 2);
  EXPECT_EQ(submitted.elapsed(), 0);
  EXPECT_GE(inlined.elapsed(), 1);
}

TEST_F(RuntimeTest, SubmitAndWaitRetiresEveryTask) {
  auto& pool = TaskPool::instance();
  std::atomic<int> ran{0};
  TaskGroup group;
  for (int i = 0; i < 100; ++i) {
    pool.submit(group, [&ran] { ran++; }, TaskClass::kGeneral);
  }
  group.wait();
  EXPECT_EQ(ran.load(), 100);
  EXPECT_EQ(group.pending(), 0);
}

TEST_F(RuntimeTest, WaitRethrowsFirstTaskExceptionAndPoolStaysUsable) {
  auto& pool = TaskPool::instance();
  TaskGroup group;
  pool.submit(group, [] { throw std::runtime_error("task boom"); });
  EXPECT_THROW(group.wait(), std::runtime_error);

  // The pool must shrug the exception off: later work still completes.
  std::atomic<int> ran{0};
  TaskGroup after;
  pool.submit(after, [&ran] { ran++; });
  after.wait();
  EXPECT_EQ(ran.load(), 1);
}

TEST_F(RuntimeTest, ParallelForRethrowsBodyException) {
  EXPECT_THROW(
      runtime::parallel_for(
          0, 1000,
          [](std::int64_t i) {
            if (i == 700) throw std::runtime_error("chunk boom");
          },
          /*grain=*/8),
      std::runtime_error);

  // Region state must have been released cleanly: the next region works.
  std::atomic<std::int64_t> sum{0};
  runtime::parallel_for(0, 100, [&](std::int64_t i) { sum += i; }, 4);
  EXPECT_EQ(sum.load(), 99 * 100 / 2);
}

TEST_F(RuntimeTest, NestedParallelForInsideSubmittedTaskComposes) {
  auto& pool = TaskPool::instance();
  constexpr int kOuter = 8;
  constexpr std::int64_t kInner = 256;
  std::atomic<std::int64_t> total{0};
  TaskGroup group;
  for (int t = 0; t < kOuter; ++t) {
    pool.submit(group, [&total] {
      runtime::parallel_for(
          0, kInner, [&total](std::int64_t) { total++; }, /*grain=*/16);
    });
  }
  group.wait();
  EXPECT_EQ(total.load(), kOuter * kInner);
}

TEST_F(RuntimeTest, ResizeReshapesWidthAndKeepsRegionsCorrect) {
  auto& pool = TaskPool::instance();
  for (int width : {1, 2, 8, 4}) {
    pool.resize(width);
    EXPECT_EQ(pool.threads(), width);
    std::atomic<std::int64_t> sum{0};
    runtime::parallel_for(0, 500, [&](std::int64_t i) { sum += i; }, 32);
    EXPECT_EQ(sum.load(), 499 * 500 / 2) << "width=" << width;
  }
}

TEST_F(RuntimeTest, PartitionScopeIsAHintNotACorrectnessHazard) {
  auto& pool = TaskPool::instance();
  EXPECT_GE(pool.num_partitions(), 1);
  std::atomic<int> ran{0};
  TaskGroup group;
  {
    runtime::Partition scope(pool.num_partitions() - 1);
    for (int i = 0; i < 32; ++i) pool.submit(group, [&ran] { ran++; });
  }  // hint restored before wait — tasks still complete
  group.wait();
  EXPECT_EQ(ran.load(), 32);
}

// Regression for a completion race: execute() used to decrement pending_
// outside the group mutex and then lock it to notify, so a waiter could
// observe pending_ == 0, return from wait(), and destroy the stack
// TaskGroup while the worker was still about to lock/notify the destroyed
// mutex and condvar. Rapid create-wait-destroy cycles with near-empty
// tasks maximize that window; the SPTX_SANITIZE=thread CI job flags the
// use-after-free if the decrement-and-notify handshake ever regresses.
TEST_F(RuntimeTest, StackGroupDestroyedRightAfterWaitChurn) {
  auto& pool = TaskPool::instance();
  std::atomic<int> ran{0};
  constexpr int kRounds = 2000;
  for (int round = 0; round < kRounds; ++round) {
    TaskGroup group;
    pool.submit(group, [&ran] { ran++; });
    group.wait();
  }
  EXPECT_EQ(ran.load(), kRounds);
}

TEST_F(RuntimeTest, StatsGaugesDrainAtIdleAndJsonCarriesHealthKeys) {
  auto& pool = TaskPool::instance();
  TaskGroup group;
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) {
    pool.submit(group, [&ran] { ran++; }, TaskClass::kServe);
  }
  group.wait();
  runtime::parallel_for(0, 2048, [](std::int64_t) {}, 64);

  EXPECT_EQ(idle_queue_depth(pool), 0);  // drains once the pool idles
  const auto stats = pool.stats();
  EXPECT_GE(stats.executed, 64);
  EXPECT_GE(stats.steal_ratio, 0.0);
  EXPECT_LE(stats.steal_ratio, 1.0);
  const auto& serve =
      stats.per_class[static_cast<int>(TaskClass::kServe)];
  EXPECT_GE(serve.submitted, 64);
  EXPECT_GE(serve.executed, 64);

  const std::string json = pool.stats_json();
  for (const char* key : {"\"mode\"", "\"threads\"", "\"queue_depth\"",
                          "\"steal_ratio\"", "\"parked_workers\"",
                          "\"classes\"", "\"serve\"", "\"kernel\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
}

TEST_F(RuntimeTest, RecordExternalAccountsWithoutQueueRoundTrip) {
  auto& pool = TaskPool::instance();
  const auto before = pool.stats();
  pool.record_external(TaskClass::kAnnBuild);
  const auto after = pool.stats();
  const int ann = static_cast<int>(TaskClass::kAnnBuild);
  EXPECT_EQ(after.per_class[ann].submitted, before.per_class[ann].submitted + 1);
  EXPECT_EQ(after.per_class[ann].executed, before.per_class[ann].executed + 1);
  EXPECT_EQ(after.queue_depth, 0);
}

// ---- pool vs legacy bit-identity -------------------------------------------

models::ModelConfig cfg8() {
  models::ModelConfig cfg;
  cfg.dim = 8;
  cfg.rel_dim = 8;
  return cfg;
}

std::vector<float> train_ddp_probe(const kg::Dataset& ds) {
  distributed::DdpConfig dc;
  dc.workers = 3;
  dc.epochs = 2;
  dc.batch_size = 128;
  dc.shard_size = 32;
  dc.lr = 0.01f;
  dc.seed = 5;
  auto make = [n = ds.num_entities(), r = ds.num_relations()](Rng& rng) {
    return models::make_sparse_model("TransE", n, r, cfg8(), rng);
  };
  const auto result = distributed::train_ddp(make, ds.train, dc);
  return result.model->score(ds.train.slice(0, 16));
}

TEST_F(RuntimeTest, DdpOnSharedPoolBitIdenticalToLegacyThreads) {
  Rng rng(71);
  const auto ds = kg::generate({"runtime_ddp", 80, 6, 400}, rng, 0.0, 0.0);

  std::vector<float> pool_scores, legacy_scores;
  {
    config::ScopedOverride mode("SPTX_RUNTIME", "pool");
    pool_scores = train_ddp_probe(ds);
  }
  {
    config::ScopedOverride mode("SPTX_RUNTIME", "legacy");
    legacy_scores = train_ddp_probe(ds);
  }
  ASSERT_EQ(pool_scores.size(), legacy_scores.size());
  for (std::size_t i = 0; i < pool_scores.size(); ++i) {
    EXPECT_EQ(pool_scores[i], legacy_scores[i]) << "i=" << i;  // bitwise
  }
}

// ---- TSan hammer -----------------------------------------------------------

// External threads drive regions, submit tasks, and read stats against the
// same pool concurrently. No assertion beyond the counts: the point is the
// schedule space TSan explores in the SPTX_SANITIZE=thread CI job.
TEST_F(RuntimeTest, ConcurrentExternalDriversHammer) {
  auto& pool = TaskPool::instance();
  constexpr int kDrivers = 4;
  constexpr int kRounds = 25;
  std::atomic<std::int64_t> visited{0};
  std::atomic<int> tasks_ran{0};
  std::vector<std::thread> drivers;
  drivers.reserve(kDrivers);
  for (int d = 0; d < kDrivers; ++d) {
    drivers.emplace_back([&, d] {
      for (int r = 0; r < kRounds; ++r) {
        runtime::parallel_for(
            0, 256, [&visited](std::int64_t) { visited++; }, /*grain=*/16);
        TaskGroup group;
        for (int i = 0; i < 8; ++i) {
          pool.submit(group, [&tasks_ran] { tasks_ran++; },
                      d % 2 ? TaskClass::kKernel : TaskClass::kDdp);
        }
        group.wait();
        (void)pool.stats();
      }
    });
  }
  for (auto& t : drivers) t.join();
  EXPECT_EQ(visited.load(), std::int64_t{kDrivers} * kRounds * 256);
  EXPECT_EQ(tasks_ran.load(), kDrivers * kRounds * 8);
  EXPECT_EQ(idle_queue_depth(pool), 0);
}

}  // namespace
}  // namespace sptx
