// Tests for the sptx::Engine facade: wrapper bit-identity against the
// legacy free functions (train / train_ddp / evaluate), checkpoint
// round-trips through the Engine path for every model family, frozen
//-snapshot isolation, and configuration override plumbing.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/api/engine.hpp"
#include "src/kg/synthetic.hpp"
#include "src/models/checkpoint.hpp"

namespace sptx {
namespace {

kg::Dataset tiny_dataset(std::uint64_t seed = 42) {
  Rng rng(seed);
  return kg::generate({"engine-test", 60, 5, 700}, rng, 0.05, 0.1);
}

ModelSpec tiny_spec(const std::string& family) {
  ModelSpec spec;
  spec.family = family;
  spec.config.dim = 16;
  spec.config.rel_dim = 8;
  spec.seed = 7;
  return spec;
}

std::vector<Triplet> probe_batch(const kg::Dataset& ds) {
  std::vector<Triplet> probe;
  for (std::int64_t i = 0; i < std::min<std::int64_t>(ds.test.size(), 32); ++i)
    probe.push_back(ds.test[i]);
  return probe;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// The legacy caller's model construction — exactly what
/// models::make_model(spec, ...) must reproduce for wrappers to be
/// bit-identical.
std::unique_ptr<models::KgeModel> legacy_model(const ModelSpec& spec,
                                               const kg::Dataset& ds) {
  Rng rng(spec.seed);
  return models::make_sparse_model(spec.family, ds.num_entities(),
                                   ds.num_relations(), spec.config, rng);
}

class EngineEquivalenceTest : public ::testing::TestWithParam<const char*> {};

TEST_P(EngineEquivalenceTest, TrainWrapperIsBitIdenticalToFreeFunction) {
  const kg::Dataset ds = tiny_dataset();
  const ModelSpec spec = tiny_spec(GetParam());
  train::TrainConfig tc;
  tc.epochs = 3;
  tc.batch_size = 128;

  // Legacy path: factory + free function.
  auto legacy = legacy_model(spec, ds);
  const auto legacy_result = train::train(*legacy, ds.train, tc);

  // Engine path: same spec, same config, same snapshot (clean env).
  Engine engine;
  engine.create_model(spec, ds.num_entities(), ds.num_relations());
  const auto engine_result = engine.train(ds.train, tc);

  ASSERT_EQ(legacy_result.epoch_loss.size(), engine_result.epoch_loss.size());
  for (std::size_t e = 0; e < legacy_result.epoch_loss.size(); ++e)
    EXPECT_EQ(legacy_result.epoch_loss[e], engine_result.epoch_loss[e])
        << "epoch " << e;

  const auto probe = probe_batch(ds);
  const auto legacy_scores = legacy->score(probe);
  const auto engine_scores = engine.model().score(probe);
  for (std::size_t i = 0; i < probe.size(); ++i)
    EXPECT_EQ(legacy_scores[i], engine_scores[i]) << "probe " << i;
}

TEST_P(EngineEquivalenceTest, EvaluateWrapperMatchesFreeFunction) {
  const kg::Dataset ds = tiny_dataset();
  const ModelSpec spec = tiny_spec(GetParam());
  train::TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 128;

  auto legacy = legacy_model(spec, ds);
  train::train(*legacy, ds.train, tc);
  Engine engine;
  engine.create_model(spec, ds.num_entities(), ds.num_relations());
  engine.train(ds.train, tc);

  eval::EvalConfig ec;
  ec.max_queries = 20;
  const auto legacy_metrics = eval::evaluate(*legacy, ds, ec);
  const auto engine_metrics = engine.evaluate(ds, ec);
  EXPECT_EQ(legacy_metrics.queries, engine_metrics.queries);
  EXPECT_EQ(legacy_metrics.mrr, engine_metrics.mrr);
  EXPECT_EQ(legacy_metrics.mean_rank, engine_metrics.mean_rank);
  EXPECT_EQ(legacy_metrics.hits_at_10, engine_metrics.hits_at_10);
}

INSTANTIATE_TEST_SUITE_P(Families, EngineEquivalenceTest,
                         ::testing::Values("TransE", "TransR", "DistMult"));

TEST(EngineDdp, WrapperIsBitIdenticalToFreeFunction) {
  const kg::Dataset ds = tiny_dataset();
  const ModelSpec spec = tiny_spec("TransE");
  distributed::DdpConfig dc;
  dc.workers = 2;
  dc.epochs = 2;
  dc.batch_size = 128;
  dc.shard_size = 32;

  const kg::TripletSource source(ds.train);
  auto legacy_result = distributed::train_ddp(
      [&](Rng& rng) {
        return models::make_sparse_model(spec.family, ds.num_entities(),
                                         ds.num_relations(), spec.config,
                                         rng);
      },
      source, dc);

  Engine engine;
  engine.create_model(spec, ds.num_entities(), ds.num_relations());
  const auto engine_result = engine.train_ddp(source, dc);

  ASSERT_EQ(legacy_result.epoch_loss.size(), engine_result.epoch_loss.size());
  for (std::size_t e = 0; e < legacy_result.epoch_loss.size(); ++e)
    EXPECT_EQ(legacy_result.epoch_loss[e], engine_result.epoch_loss[e]);
  EXPECT_EQ(legacy_result.shards_executed, engine_result.shards_executed);

  // The engine adopted the trained replica; scores match the legacy one.
  const auto probe = probe_batch(ds);
  const auto legacy_scores = legacy_result.model->score(probe);
  const auto engine_scores = engine.model().score(probe);
  for (std::size_t i = 0; i < probe.size(); ++i)
    EXPECT_EQ(legacy_scores[i], engine_scores[i]);
}

// Checkpoint round-trip through the Engine for every one of the 11 sparse
// families: save via Engine, reload into a fresh Engine, and assert the
// serving layer returns identical scores.
class EngineCheckpointTest : public ::testing::TestWithParam<const char*> {};

TEST_P(EngineCheckpointTest, RoundTripsThroughEngineAndSession) {
  const kg::Dataset ds = tiny_dataset(9);
  const ModelSpec spec = tiny_spec(GetParam());

  Engine engine;
  engine.create_model(spec, ds.num_entities(), ds.num_relations());
  // A couple of epochs so the weights are not pure initialisation.
  train::TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 256;
  engine.train(ds.train, tc);

  const std::string path =
      temp_path(std::string("engine_ckpt_") + GetParam() + ".sptxc");
  engine.save(path);

  Engine restored;
  restored.load_model(spec, ds.num_entities(), ds.num_relations(), path);
  std::remove(path.c_str());

  const auto probe = probe_batch(ds);
  auto original = engine.open_session();
  auto reloaded = restored.open_session();
  const auto a = original->score(probe);
  const auto b = reloaded->score(probe);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i], b[i]) << GetParam() << " probe " << i;

  // The serving queries agree too, not just raw scores.
  const auto top_a = original->top_tails(probe[0].head, probe[0].relation, 5);
  const auto top_b = reloaded->top_tails(probe[0].head, probe[0].relation, 5);
  ASSERT_EQ(top_a.size(), top_b.size());
  for (std::size_t i = 0; i < top_a.size(); ++i) {
    EXPECT_EQ(top_a[i].entity, top_b[i].entity);
    EXPECT_EQ(top_a[i].score, top_b[i].score);
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, EngineCheckpointTest,
                         ::testing::Values("TransE", "TransR", "TransH",
                                           "TorusE", "TransD", "TransA",
                                           "TransC", "TransM", "DistMult",
                                           "ComplEx", "RotatE"));

TEST(EngineFreeze, SessionsAreIsolatedFromFurtherTraining) {
  const kg::Dataset ds = tiny_dataset();
  Engine engine;
  engine.create_model(tiny_spec("TransE"), ds.num_entities(),
                      ds.num_relations());
  train::TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 256;
  tc.lr = 0.05f;  // large enough steps that "the live model moved" is visible
  engine.train(ds.train, tc);

  const auto probe = probe_batch(ds);
  auto session = engine.open_session();
  const auto before = session->score(probe);

  // Training the engine further must not move the frozen snapshot...
  engine.train(ds.train, tc);
  const auto after = session->score(probe);
  for (std::size_t i = 0; i < probe.size(); ++i)
    EXPECT_EQ(before[i], after[i]);

  // ...and the engine's live model really did move.
  const auto live = engine.model().score(probe);
  bool any_diff = false;
  for (std::size_t i = 0; i < probe.size(); ++i)
    any_diff = any_diff || live[i] != before[i];
  EXPECT_TRUE(any_diff);
}

TEST(EngineConfig, OverridesAreValidatedAndVisible) {
  Engine::Options options;
  options.config_overrides = {{"SPTX_PLAN_CACHE", "0"},
                              {"SPTX_SPMM_KERNEL", "naive"}};
  options.install_process_config = false;
  Engine engine(options);
  EXPECT_FALSE(engine.config().flag_or("SPTX_PLAN_CACHE", true));
  EXPECT_EQ(engine.config().value_or("SPTX_SPMM_KERNEL", ""), "naive");
  EXPECT_EQ(engine.config().origin("SPTX_PLAN_CACHE"),
            ConfigOrigin::kOverride);

  Engine::Options bad;
  bad.config_overrides = {{"SPTX_TYPO", "1"}};
  EXPECT_THROW(Engine{bad}, Error);
}

TEST(EngineConfig, PlanCacheOverrideStillTrainsBitIdentically) {
  // The registry override flips the execution strategy (legacy rebuild
  // loop), which the plan pipeline is tested bit-exact against — so the
  // losses must match the default engine run.
  const kg::Dataset ds = tiny_dataset();
  const ModelSpec spec = tiny_spec("TransE");
  train::TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 128;

  Engine plain;
  plain.create_model(spec, ds.num_entities(), ds.num_relations());
  const auto with_cache = plain.train(ds.train, tc);

  Engine::Options options;
  options.config_overrides = {{"SPTX_PLAN_CACHE", "off"}};
  options.install_process_config = false;
  Engine overridden(options);
  overridden.create_model(spec, ds.num_entities(), ds.num_relations());
  const auto without_cache = overridden.train(ds.train, tc);

  ASSERT_EQ(with_cache.epoch_loss.size(), without_cache.epoch_loss.size());
  for (std::size_t e = 0; e < with_cache.epoch_loss.size(); ++e)
    EXPECT_EQ(with_cache.epoch_loss[e], without_cache.epoch_loss[e]);
}

TEST(EngineModel, RequiresCreateBeforeUse) {
  Engine engine;
  EXPECT_FALSE(engine.has_model());
  EXPECT_THROW(engine.model(), Error);
  EXPECT_THROW(engine.save("/tmp/nope.sptxc"), Error);
  const kg::Dataset ds = tiny_dataset();
  EXPECT_THROW(engine.open_session(), Error);
  engine.create_model(tiny_spec("TransE"), ds.num_entities(),
                      ds.num_relations());
  EXPECT_TRUE(engine.has_model());
  EXPECT_EQ(engine.spec().family, "TransE");
}

}  // namespace
}  // namespace sptx
