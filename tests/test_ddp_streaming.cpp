// Tests for the sharded streaming DDP trainer: bit-identical results for
// any worker count and for streaming vs in-memory sources, zero incidence
// rebuilds after epoch 0 per worker, sparse all-reduce correctness across
// all 11 sparse model families, and the O(batch) memory contract when
// training an mmap'd file that must never be materialised in RAM.
#include <gtest/gtest.h>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include <cstdio>
#include <string>
#include <vector>

#include "src/distributed/ddp.hpp"
#include "src/kg/streaming_store.hpp"
#include "src/kg/synthetic.hpp"
#include "src/profiling/counters.hpp"
#include "src/train/trainer.hpp"

namespace sptx {
namespace {

const char* const kAllModels[] = {"TransE",   "TransR",  "TransH", "TorusE",
                                  "TransD",   "TransA",  "TransC", "TransM",
                                  "DistMult", "ComplEx", "RotatE"};

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

kg::Dataset small_dataset() {
  Rng rng(71);
  return kg::generate({"ddp_stream", 80, 6, 400}, rng, 0.0, 0.0);
}

models::ModelConfig cfg8() {
  models::ModelConfig cfg;
  cfg.dim = 8;
  cfg.rel_dim = 8;
  return cfg;
}

distributed::DdpConfig base_config() {
  distributed::DdpConfig dc;
  dc.epochs = 3;
  dc.batch_size = 128;
  dc.shard_size = 32;  // fixed decomposition → worker-count invariance
  dc.lr = 0.01f;
  dc.seed = 5;
  return dc;
}

std::function<std::unique_ptr<models::KgeModel>(Rng&)> sparse_factory(
    const std::string& name, const kg::Dataset& ds) {
  return [name, n = ds.num_entities(), r = ds.num_relations()](Rng& rng) {
    return models::make_sparse_model(name, n, r, cfg8(), rng);
  };
}

/// Probe scores from the trained replica — detects any weight divergence
/// the loss curve could miss.
std::vector<float> probe_scores(const distributed::DdpResult& result,
                                const kg::Dataset& ds) {
  return result.model->score(ds.train.slice(0, 16));
}

TEST(DdpStreaming, ShardedStreamingBitIdenticalToSingleWorkerMemory) {
  const kg::Dataset ds = small_dataset();
  const std::string path = temp_path("ddp_all_models.sptxs");
  kg::StreamingTripletStore::write_file(path, ds.train.triplets(),
                                        ds.num_entities(),
                                        ds.num_relations());
  const auto store = kg::StreamingTripletStore::open(path);

  for (const char* name : kAllModels) {
    const auto make = sparse_factory(name, ds);
    auto ref_cfg = base_config();
    ref_cfg.workers = 1;
    const auto ref = distributed::train_ddp(make, ds.train, ref_cfg);

    auto got_cfg = base_config();
    got_cfg.workers = 3;
    const auto got = distributed::train_ddp(make, store, got_cfg);

    ASSERT_EQ(ref.epoch_loss.size(), got.epoch_loss.size()) << name;
    for (std::size_t i = 0; i < ref.epoch_loss.size(); ++i)
      EXPECT_FLOAT_EQ(ref.epoch_loss[i], got.epoch_loss[i])
          << name << " epoch " << i;
    const auto ref_scores = probe_scores(ref, ds);
    const auto got_scores = probe_scores(got, ds);
    ASSERT_EQ(ref_scores.size(), got_scores.size()) << name;
    for (std::size_t i = 0; i < ref_scores.size(); ++i)
      EXPECT_FLOAT_EQ(ref_scores[i], got_scores[i]) << name << " probe " << i;
  }
  std::remove(path.c_str());
}

TEST(DdpStreaming, UnevenShardsWeightedBitIdenticalAcrossWorkerCounts) {
  // 300 triplets, batch 128, shard 48: batches of 128, 128, 44 with shard
  // runs 48+48+32 / 48+48+32 / 44 — nothing divides evenly anywhere, so
  // uniform (1/p) weighting would over-count every short shard. Correct
  // weighting makes the loss and the model identical for any worker count.
  Rng rng(13);
  const kg::Dataset ds = kg::generate({"uneven", 50, 3, 300}, rng, 0.0, 0.0);
  auto run = [&](int workers) {
    auto dc = base_config();
    dc.workers = workers;
    dc.shard_size = 48;
    dc.batch_size = 128;
    return distributed::train_ddp(sparse_factory("TransE", ds), ds.train, dc);
  };
  const auto one = run(1);
  const auto two = run(2);
  const auto four = run(4);
  ASSERT_EQ(one.epoch_loss.size(), two.epoch_loss.size());
  for (std::size_t i = 0; i < one.epoch_loss.size(); ++i) {
    EXPECT_FLOAT_EQ(one.epoch_loss[i], two.epoch_loss[i]) << "epoch " << i;
    EXPECT_FLOAT_EQ(one.epoch_loss[i], four.epoch_loss[i]) << "epoch " << i;
  }
  const auto s1 = probe_scores(one, ds);
  const auto s4 = probe_scores(four, ds);
  for (std::size_t i = 0; i < s1.size(); ++i) EXPECT_FLOAT_EQ(s1[i], s4[i]);
}

TEST(DdpStreaming, MatchesSequentialTrainerPerFamily) {
  // Anchor against the plain single-model trainer for EVERY family: a
  // full-batch shard (shard_size == batch_size, 1 worker) runs the same
  // plan pipeline and the same SGD arithmetic, so the loss trajectories
  // must agree closely (update vectorisation differs per parameter shape,
  // hence NEAR). Because train::train never harvests, this is the test
  // that would expose a sparse all-reduce dropping gradient — the
  // harvest-based runs can't check themselves against each other.
  const kg::Dataset ds = small_dataset();
  for (const char* name : kAllModels) {
    auto dc = base_config();
    dc.workers = 1;
    dc.shard_size = dc.batch_size;
    const auto ddp =
        distributed::train_ddp(sparse_factory(name, ds), ds.train, dc);

    Rng rng(dc.seed);
    auto model = models::make_sparse_model(name, ds.num_entities(),
                                           ds.num_relations(), cfg8(), rng);
    train::TrainConfig tc;
    tc.epochs = dc.epochs;
    tc.batch_size = dc.batch_size;
    tc.lr = dc.lr;
    tc.seed = dc.seed + 1;  // train_ddp draws negatives from seed+1
    const auto seq = train::train(*model, ds.train, tc);

    ASSERT_EQ(ddp.epoch_loss.size(), seq.epoch_loss.size()) << name;
    for (std::size_t i = 0; i < ddp.epoch_loss.size(); ++i)
      EXPECT_NEAR(ddp.epoch_loss[i], seq.epoch_loss[i], 2e-4f)
          << name << " epoch " << i;
  }
}

TEST(DdpStreaming, ZeroIncidenceRebuildsAfterEpochZeroPerWorker) {
  const kg::Dataset ds = small_dataset();
  auto dc = base_config();
  dc.workers = 2;
  dc.epochs = 4;
  std::int64_t builds_after_epoch0 = -1;
  dc.on_epoch = [&](int epoch, float) {
    if (epoch == 0)
      builds_after_epoch0 =
          profiling::counter_value(profiling::Counter::kIncidenceBuilds);
  };
  const auto result =
      distributed::train_ddp(sparse_factory("TransE", ds), ds.train, dc);

  ASSERT_GE(builds_after_epoch0, 0);
  EXPECT_EQ(profiling::counter_value(profiling::Counter::kIncidenceBuilds),
            builds_after_epoch0)
      << "epochs past the first must be served entirely from cached plans";

  // Per-worker caches: every worker misses exactly once per owned shard
  // side in epoch 0, then hits for the remaining epochs.
  ASSERT_EQ(result.worker_plan_stats.size(), 2u);
  std::int64_t total_misses = 0;
  for (const auto& stats : result.worker_plan_stats) {
    EXPECT_GT(stats.hits, 0);
    total_misses += stats.misses;
  }
  const index_t shards_per_epoch =
      result.shards_executed / dc.epochs;  // epoch-invariant schedule
  EXPECT_EQ(total_misses, 2 * shards_per_epoch);  // pos + neg side, epoch 0
  EXPECT_EQ(result.plan_stats.hits, 2 * shards_per_epoch * (dc.epochs - 1));
}

TEST(DdpStreaming, SparseAllReduceMovesOnlyTouchedRows) {
  const kg::Dataset ds = small_dataset();
  auto dc = base_config();
  dc.workers = 2;
  dc.epochs = 1;
  const auto result =
      distributed::train_ddp(sparse_factory("TransE", ds), ds.train, dc);
  EXPECT_GT(result.shards_executed, 0);
  EXPECT_GT(result.allreduce_rows, 0);
  // TransE touches ≤ 4 entity rows + 1 relation row per triplet across both
  // parameter tables; the sparse path must stay within that incidence bound
  // instead of shipping the full (N + R)-row tables per shard.
  const std::int64_t per_triplet_bound = 5;
  EXPECT_LE(result.allreduce_rows,
            per_triplet_bound * ds.train.size() * dc.epochs);
  EXPECT_EQ(result.dense_reduces, 0)
      << "TransE's tables are entity/relation-indexed; nothing should fall "
         "back to the dense path";
}

TEST(DdpStreaming, DenseBaselineFallsBackToSpanPath) {
  // Non-ScoringCore models (TorchKGE-style dense baselines) train through
  // the span fallback; worker-count invariance must hold there too.
  const kg::Dataset ds = small_dataset();
  auto make = [&](Rng& rng) {
    return models::make_dense_model("TransE", ds.num_entities(),
                                    ds.num_relations(), cfg8(), rng);
  };
  auto run = [&](int workers) {
    auto dc = base_config();
    dc.workers = workers;
    dc.epochs = 2;
    return distributed::train_ddp(make, ds.train, dc);
  };
  const auto one = run(1);
  const auto three = run(3);
  ASSERT_EQ(one.epoch_loss.size(), three.epoch_loss.size());
  for (std::size_t i = 0; i < one.epoch_loss.size(); ++i)
    EXPECT_FLOAT_EQ(one.epoch_loss[i], three.epoch_loss[i]);
}

TEST(DdpStreaming, LossDecreasesOnStream) {
  const kg::Dataset ds = small_dataset();
  const std::string path = temp_path("ddp_converge.sptxs");
  kg::StreamingTripletStore::write_file(path, ds.train.triplets(),
                                        ds.num_entities(),
                                        ds.num_relations());
  const auto store = kg::StreamingTripletStore::open(path);
  auto dc = base_config();
  dc.workers = 2;
  dc.epochs = 6;
  dc.lr = 0.05f;
  const auto result =
      distributed::train_ddp(sparse_factory("TransE", ds), store, dc);
  EXPECT_LT(result.epoch_loss.back(), result.epoch_loss.front());
  std::remove(path.c_str());
}

// The heap-budget test reads glibc's mallinfo2, which sanitizer allocators
// bypass — meaningful only on plain builds.
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SPTX_UNDER_ASAN 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define SPTX_UNDER_ASAN 1
#endif

#if !defined(SPTX_UNDER_ASAN) && defined(__GLIBC__) && \
    (__GLIBC__ > 2 || (__GLIBC__ == 2 && __GLIBC_MINOR__ >= 33))

std::size_t heap_bytes_now() {
  const struct mallinfo2 mi = ::mallinfo2();
  return mi.uordblks + mi.hblkhd;  // arena allocations + mmap'd blocks
}

TEST(DdpStreaming, NeverMaterializesTheFileInRam) {
  // Train a file several times larger than the allowed heap budget. With
  // zero-copy slices over the mapping, per-batch negative sampling and the
  // plan cache off, live heap must stay O(batch + model), not O(file). A
  // regression that copies the triplets (to_memory, pregenerate-over-all,
  // staged batches) holds an O(file) buffer across the epoch and blows the
  // budget. Worker count 1 keeps every allocation in the main arena, which
  // is the one mallinfo2 reports.
  const std::string path = temp_path("ddp_big.sptxs");
  const std::int64_t m = 600000;  // 14.4 MB of triplets on disk
  {
    Rng rng(3);
    std::vector<Triplet> triplets;
    triplets.reserve(static_cast<std::size_t>(m));
    for (std::int64_t i = 0; i < m; ++i) {
      triplets.push_back({static_cast<std::int64_t>(rng.next_below(2000)),
                          static_cast<std::int64_t>(rng.next_below(8)),
                          static_cast<std::int64_t>(rng.next_below(2000))});
    }
    kg::StreamingTripletStore::write_file(path, triplets, 2000, 8);
  }  // the staging vector dies before the baseline sample

  const auto store = kg::StreamingTripletStore::open(path);
  const std::size_t file_bytes =
      static_cast<std::size_t>(m) * sizeof(Triplet);
  const std::size_t budget = file_bytes / 3;

  distributed::DdpConfig dc;
  dc.workers = 1;
  dc.epochs = 2;
  dc.batch_size = 8192;
  dc.shard_size = 4096;
  dc.plan_cache = false;  // cached plans are deliberately O(dataset)
  dc.seed = 9;
  const std::size_t baseline = heap_bytes_now();
  std::size_t peak_epoch_heap = 0;
  dc.on_epoch = [&](int, float) {
    peak_epoch_heap = std::max(peak_epoch_heap, heap_bytes_now());
  };
  auto make = [&](Rng& rng) {
    models::ModelConfig cfg;
    cfg.dim = 8;
    return models::make_sparse_model("TransE", 2000, 8, cfg, rng);
  };
  const auto result = distributed::train_ddp(make, store, dc);
  EXPECT_EQ(result.epoch_loss.size(), 2u);
  ASSERT_GT(peak_epoch_heap, 0u);
  EXPECT_LT(peak_epoch_heap - baseline, budget)
      << "heap grew by " << (peak_epoch_heap - baseline) << " bytes against a "
      << budget << "-byte budget for a " << file_bytes << "-byte file";
  std::remove(path.c_str());
}

#endif  // glibc ≥ 2.33 (mallinfo2), not under ASan

}  // namespace
}  // namespace sptx
