// Tests for the common substrate: RNG, parallel_for, string utilities.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <vector>

#include "src/common/error.hpp"
#include "src/runtime/parallel.hpp"
#include "src/common/rng.hpp"
#include "src/common/string_utils.hpp"

namespace sptx {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, FloatInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const float f = rng.next_float();
    EXPECT_GE(f, 0.0f);
    EXPECT_LT(f, 1.0f);
  }
}

TEST(Rng, UniformCoversRange) {
  Rng rng(8);
  float lo = 1e9f, hi = -1e9f;
  for (int i = 0; i < 10000; ++i) {
    const float v = rng.uniform(-2.0f, 3.0f);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    EXPECT_GE(v, -2.0f);
    EXPECT_LT(v, 3.0f);
  }
  EXPECT_LT(lo, -1.8f);
  EXPECT_GT(hi, 2.8f);
}

TEST(Rng, NextBelowAlwaysInRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all buckets hit
}

TEST(Rng, NormalHasZeroMeanUnitVariance) {
  Rng rng(10);
  double sum = 0.0, sumsq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sumsq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sumsq / n, 1.0, 0.1);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(11);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Parallel, EveryIndexVisitedExactlyOnce) {
  std::vector<std::atomic<int>> visits(1000);
  runtime::parallel_for(0, 1000, [&](std::int64_t i) {
    visits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(Parallel, EmptyAndReversedRangesAreNoops) {
  int count = 0;
  runtime::parallel_for(5, 5, [&](std::int64_t) { ++count; });
  runtime::parallel_for(10, 3, [&](std::int64_t) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(Parallel, OffsetRange) {
  std::atomic<std::int64_t> sum{0};
  runtime::parallel_for(100, 200, [&](std::int64_t i) { sum += i; });
  EXPECT_EQ(sum.load(), (100 + 199) * 100 / 2);
}

TEST(StringUtils, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtils, SplitSingleField) {
  const auto parts = split("alone", '\t');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "alone");
}

TEST(StringUtils, TrimWhitespaceVariants) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\tx\r\n"), "x");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" a b "), "a b");
}

TEST(ErrorMacro, CheckThrowsWithContext) {
  try {
    SPTX_CHECK(1 == 2, "the answer was " << 42);
    FAIL() << "SPTX_CHECK did not throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("the answer was 42"), std::string::npos);
  }
}

}  // namespace
}  // namespace sptx
