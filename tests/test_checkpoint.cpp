// Tests for matrix serialisation and model checkpointing.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/common/rng.hpp"
#include "src/kg/synthetic.hpp"
#include "src/models/checkpoint.hpp"
#include "src/models/model.hpp"
#include "src/tensor/serialize.hpp"

namespace sptx {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(Serialize, MatrixRoundTripsExactly) {
  Rng rng(1);
  Matrix m(17, 23);
  m.fill_uniform(rng, -3, 3);
  const std::string path = temp_path("matrix.bin");
  save_matrix(path, m);
  const Matrix back = load_matrix(path);
  EXPECT_EQ(back.rows(), 17);
  EXPECT_EQ(back.cols(), 23);
  EXPECT_EQ(max_abs_diff(m, back), 0.0f);  // bit-exact
  std::remove(path.c_str());
}

TEST(Serialize, EmptyMatrixRoundTrips) {
  const std::string path = temp_path("empty.bin");
  save_matrix(path, Matrix(0, 5));
  const Matrix back = load_matrix(path);
  EXPECT_EQ(back.rows(), 0);
  EXPECT_EQ(back.cols(), 5);
  std::remove(path.c_str());
}

TEST(Serialize, MultipleMatricesShareAStream) {
  Rng rng(2);
  Matrix a(3, 4), b(7, 2);
  a.fill_uniform(rng, -1, 1);
  b.fill_uniform(rng, -1, 1);
  const std::string path = temp_path("multi.bin");
  {
    std::ofstream os(path, std::ios::binary);
    write_matrix(os, a);
    write_matrix(os, b);
  }
  std::ifstream is(path, std::ios::binary);
  EXPECT_EQ(max_abs_diff(read_matrix(is), a), 0.0f);
  EXPECT_EQ(max_abs_diff(read_matrix(is), b), 0.0f);
  std::remove(path.c_str());
}

TEST(Serialize, GarbageRejected) {
  const std::string path = temp_path("garbage.bin");
  {
    std::ofstream os(path, std::ios::binary);
    os << "definitely not a matrix";
  }
  EXPECT_THROW(load_matrix(path), Error);
  std::remove(path.c_str());
}

class CheckpointTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CheckpointTest, SaveLoadRestoresScores) {
  models::ModelConfig cfg;
  cfg.dim = 12;
  cfg.rel_dim = 6;
  Rng r1(7);
  auto model = models::make_sparse_model(GetParam(), 30, 4, cfg, r1);
  std::vector<Triplet> batch = {{0, 0, 1}, {5, 3, 9}, {29, 1, 15}};
  const auto before = model->score(batch);

  const std::string path = temp_path("ckpt.sptxc");
  models::save_checkpoint(*model, path);

  // A fresh model with a different seed scores differently...
  Rng r2(99);
  auto other = models::make_sparse_model(GetParam(), 30, 4, cfg, r2);
  bool any_diff = false;
  const auto fresh = other->score(batch);
  for (std::size_t i = 0; i < batch.size(); ++i)
    any_diff = any_diff || fresh[i] != before[i];
  EXPECT_TRUE(any_diff);

  // ...until the checkpoint restores the original parameters exactly.
  models::load_checkpoint(*other, path);
  const auto after = other->score(batch);
  for (std::size_t i = 0; i < batch.size(); ++i)
    EXPECT_FLOAT_EQ(after[i], before[i]);
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Models, CheckpointTest,
                         ::testing::Values("TransE", "TransR", "TransH",
                                           "TorusE", "TransD", "DistMult"));

TEST(Checkpoint, WrongModelNameRejected) {
  models::ModelConfig cfg;
  cfg.dim = 8;
  Rng r1(7), r2(7);
  auto transe = models::make_sparse_model("TransE", 10, 2, cfg, r1);
  auto toruse = models::make_sparse_model("TorusE", 10, 2, cfg, r2);
  const std::string path = temp_path("wrongname.sptxc");
  models::save_checkpoint(*transe, path);
  EXPECT_THROW(models::load_checkpoint(*toruse, path), Error);
  std::remove(path.c_str());
}

TEST(Checkpoint, WrongVocabularyRejected) {
  models::ModelConfig cfg;
  cfg.dim = 8;
  Rng r1(7), r2(7);
  auto small = models::make_sparse_model("TransE", 10, 2, cfg, r1);
  auto big = models::make_sparse_model("TransE", 11, 2, cfg, r2);
  const std::string path = temp_path("wrongvocab.sptxc");
  models::save_checkpoint(*small, path);
  EXPECT_THROW(models::load_checkpoint(*big, path), Error);
  std::remove(path.c_str());
}

TEST(Checkpoint, GarbageFileRejected) {
  const std::string path = temp_path("ckpt_garbage.bin");
  {
    std::ofstream os(path, std::ios::binary);
    os << "nope";
  }
  models::ModelConfig cfg;
  cfg.dim = 8;
  Rng rng(7);
  auto model = models::make_sparse_model("TransE", 10, 2, cfg, rng);
  EXPECT_THROW(models::load_checkpoint(*model, path), Error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sptx
