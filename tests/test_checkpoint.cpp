// Tests for matrix serialisation and model checkpointing.
#include <gtest/gtest.h>

#include <csignal>
#include <sys/time.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "src/common/atomic_file.hpp"
#include "src/common/error.hpp"
#include "src/common/fault.hpp"
#include "src/common/rng.hpp"
#include "src/kg/synthetic.hpp"
#include "src/models/checkpoint.hpp"
#include "src/models/model.hpp"
#include "src/tensor/serialize.hpp"

namespace sptx {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(Serialize, MatrixRoundTripsExactly) {
  Rng rng(1);
  Matrix m(17, 23);
  m.fill_uniform(rng, -3, 3);
  const std::string path = temp_path("matrix.bin");
  save_matrix(path, m);
  const Matrix back = load_matrix(path);
  EXPECT_EQ(back.rows(), 17);
  EXPECT_EQ(back.cols(), 23);
  EXPECT_EQ(max_abs_diff(m, back), 0.0f);  // bit-exact
  std::remove(path.c_str());
}

TEST(Serialize, EmptyMatrixRoundTrips) {
  const std::string path = temp_path("empty.bin");
  save_matrix(path, Matrix(0, 5));
  const Matrix back = load_matrix(path);
  EXPECT_EQ(back.rows(), 0);
  EXPECT_EQ(back.cols(), 5);
  std::remove(path.c_str());
}

TEST(Serialize, MultipleMatricesShareAStream) {
  Rng rng(2);
  Matrix a(3, 4), b(7, 2);
  a.fill_uniform(rng, -1, 1);
  b.fill_uniform(rng, -1, 1);
  const std::string path = temp_path("multi.bin");
  {
    std::ofstream os(path, std::ios::binary);
    write_matrix(os, a);
    write_matrix(os, b);
  }
  std::ifstream is(path, std::ios::binary);
  EXPECT_EQ(max_abs_diff(read_matrix(is), a), 0.0f);
  EXPECT_EQ(max_abs_diff(read_matrix(is), b), 0.0f);
  std::remove(path.c_str());
}

TEST(Serialize, GarbageRejected) {
  const std::string path = temp_path("garbage.bin");
  {
    std::ofstream os(path, std::ios::binary);
    os << "definitely not a matrix";
  }
  EXPECT_THROW(load_matrix(path), Error);
  std::remove(path.c_str());
}

class CheckpointTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CheckpointTest, SaveLoadRestoresScores) {
  models::ModelConfig cfg;
  cfg.dim = 12;
  cfg.rel_dim = 6;
  Rng r1(7);
  auto model = models::make_sparse_model(GetParam(), 30, 4, cfg, r1);
  std::vector<Triplet> batch = {{0, 0, 1}, {5, 3, 9}, {29, 1, 15}};
  const auto before = model->score(batch);

  const std::string path = temp_path("ckpt.sptxc");
  models::save_checkpoint(*model, path);

  // A fresh model with a different seed scores differently...
  Rng r2(99);
  auto other = models::make_sparse_model(GetParam(), 30, 4, cfg, r2);
  bool any_diff = false;
  const auto fresh = other->score(batch);
  for (std::size_t i = 0; i < batch.size(); ++i)
    any_diff = any_diff || fresh[i] != before[i];
  EXPECT_TRUE(any_diff);

  // ...until the checkpoint restores the original parameters exactly.
  models::load_checkpoint(*other, path);
  const auto after = other->score(batch);
  for (std::size_t i = 0; i < batch.size(); ++i)
    EXPECT_FLOAT_EQ(after[i], before[i]);
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Models, CheckpointTest,
                         ::testing::Values("TransE", "TransR", "TransH",
                                           "TorusE", "TransD", "DistMult"));

TEST(Checkpoint, WrongModelNameRejected) {
  models::ModelConfig cfg;
  cfg.dim = 8;
  Rng r1(7), r2(7);
  auto transe = models::make_sparse_model("TransE", 10, 2, cfg, r1);
  auto toruse = models::make_sparse_model("TorusE", 10, 2, cfg, r2);
  const std::string path = temp_path("wrongname.sptxc");
  models::save_checkpoint(*transe, path);
  EXPECT_THROW(models::load_checkpoint(*toruse, path), Error);
  std::remove(path.c_str());
}

TEST(Checkpoint, WrongVocabularyRejected) {
  models::ModelConfig cfg;
  cfg.dim = 8;
  Rng r1(7), r2(7);
  auto small = models::make_sparse_model("TransE", 10, 2, cfg, r1);
  auto big = models::make_sparse_model("TransE", 11, 2, cfg, r2);
  const std::string path = temp_path("wrongvocab.sptxc");
  models::save_checkpoint(*small, path);
  EXPECT_THROW(models::load_checkpoint(*big, path), Error);
  std::remove(path.c_str());
}

TEST(Checkpoint, GarbageFileRejected) {
  const std::string path = temp_path("ckpt_garbage.bin");
  {
    std::ofstream os(path, std::ios::binary);
    os << "nope";
  }
  models::ModelConfig cfg;
  cfg.dim = 8;
  Rng rng(7);
  auto model = models::make_sparse_model("TransE", 10, 2, cfg, rng);
  EXPECT_THROW(models::load_checkpoint(*model, path), Error);
  std::remove(path.c_str());
}

// ---- corruption & crash safety --------------------------------------------

std::unique_ptr<models::KgeModel> small_model(std::uint64_t seed) {
  models::ModelConfig cfg;
  cfg.dim = 8;
  Rng rng(seed);
  return models::make_sparse_model("TransE", 10, 2, cfg, rng);
}

std::string read_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream bytes;
  bytes << is.rdbuf();
  return bytes.str();
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(CheckpointCorruption, TruncatedFileRejectedTyped) {
  auto model = small_model(7);
  const std::string path = temp_path("ckpt_truncated.sptxc");
  models::save_checkpoint(*model, path);
  const std::string bytes = read_bytes(path);
  ASSERT_GT(bytes.size(), 16u);
  // Cut the payload short: the header promises more bytes than exist.
  write_bytes(path, bytes.substr(0, bytes.size() - 7));
  try {
    models::load_checkpoint(*model, path);
    FAIL() << "truncated checkpoint must be rejected";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCorruptCheckpoint);
  }
  std::remove(path.c_str());
}

TEST(CheckpointCorruption, BitFlipFailsTheCrc) {
  auto model = small_model(7);
  const std::string path = temp_path("ckpt_bitflip.sptxc");
  models::save_checkpoint(*model, path);
  std::string bytes = read_bytes(path);
  ASSERT_GT(bytes.size(), 32u);
  bytes[bytes.size() / 2] ^= 0x40;  // one flipped bit mid-payload
  write_bytes(path, bytes);
  try {
    models::load_checkpoint(*model, path);
    FAIL() << "bit-flipped checkpoint must fail the CRC";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCorruptCheckpoint);
  }
  std::remove(path.c_str());
}

TEST(CheckpointCorruption, FailedRewriteNeverTruncatesTheGoodCheckpoint) {
  // Write a good checkpoint, then make the NEXT write fail mid-commit: the
  // destination must keep the previous complete content byte for byte, and
  // no orphaned temp file may linger.
  auto model = small_model(7);
  const std::string path = temp_path("ckpt_preserved.sptxc");
  models::save_checkpoint(*model, path);
  const std::string good = read_bytes(path);

  auto newer = small_model(99);
  fault::install("checkpoint_write:fail_once@1");
  try {
    models::save_checkpoint(*newer, path);
    fault::clear();
    FAIL() << "the injected commit fault must surface";
  } catch (const Error& e) {
    fault::clear();
    EXPECT_EQ(e.code(), ErrorCode::kFaultInjected);
  }

  EXPECT_EQ(read_bytes(path), good);  // old checkpoint untouched
  int leftovers = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(::testing::TempDir()))
    if (entry.path().filename().string().starts_with(
            "ckpt_preserved.sptxc.tmp"))
      ++leftovers;
  EXPECT_EQ(leftovers, 0);  // failed commit cleaned up its temp file

  // The survivor still loads, and a retry (fault cleared) goes through.
  EXPECT_NO_THROW(models::load_checkpoint(*newer, path));
  models::save_checkpoint(*newer, path);
  EXPECT_NO_THROW(models::load_checkpoint(*model, path));
  std::remove(path.c_str());
}

TEST(CheckpointCorruption, TrainStateRoundTripsExactly) {
  auto model = small_model(7);
  const std::string path = temp_path("ckpt_trainstate.sptxc");
  models::TrainCheckpointState st;
  st.next_epoch = 5;
  st.rng_state = {1u, 2u, 3u, 4u};
  st.best_loss = 0.25f;
  st.epochs_without_improvement = 2;
  st.optimizer = "sgd";
  st.negatives = {{0, 1, 2}, {3, 0, 4}};
  st.positions = {4, 2, 0, 1, 3};
  st.epoch_loss = {1.5f, 1.0f, 0.5f, 0.3f, 0.25f};
  models::save_train_checkpoint(*model, st, path);

  auto other = small_model(99);
  const auto back = models::load_train_checkpoint(*other, path);
  EXPECT_EQ(back.next_epoch, st.next_epoch);
  EXPECT_EQ(back.rng_state, st.rng_state);
  EXPECT_FLOAT_EQ(back.best_loss, st.best_loss);
  EXPECT_EQ(back.epochs_without_improvement, st.epochs_without_improvement);
  EXPECT_EQ(back.optimizer, st.optimizer);
  ASSERT_EQ(back.negatives.size(), st.negatives.size());
  for (std::size_t i = 0; i < st.negatives.size(); ++i) {
    EXPECT_EQ(back.negatives[i].head, st.negatives[i].head);
    EXPECT_EQ(back.negatives[i].relation, st.negatives[i].relation);
    EXPECT_EQ(back.negatives[i].tail, st.negatives[i].tail);
  }
  EXPECT_EQ(back.positions, st.positions);
  EXPECT_EQ(back.epoch_loss, st.epoch_loss);
  std::remove(path.c_str());
}

TEST(CheckpointCorruption, ModelLoadRejectsTrainKindTyped) {
  // A train checkpoint fed to the model-only loader (and vice versa) is a
  // kind mismatch, not a crash.
  auto model = small_model(7);
  const std::string path = temp_path("ckpt_kind.sptxc");
  models::save_train_checkpoint(*model, {}, path);
  EXPECT_THROW(models::load_checkpoint(*model, path), Error);
  models::save_checkpoint(*model, path);
  EXPECT_THROW(models::load_train_checkpoint(*model, path), Error);
  std::remove(path.c_str());
}

TEST(CheckpointRotation, LatestFindsHighestEpochAndPrunes) {
  const std::string base = temp_path("rotbase");
  auto model = small_model(7);
  for (int epoch : {2, 4, 10}) {
    models::save_checkpoint(*model,
                            models::checkpoint_path_for_epoch(base, epoch));
  }
  // A kill-orphaned temp file must never be mistaken for a rotation.
  write_bytes(base + ".ep12.tmp.1234", "torn");

  auto found = models::latest_checkpoint(base);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->epoch, 10);
  // Path equality modulo slash normalisation (TempDir ends in '/').
  EXPECT_TRUE(std::filesystem::equivalent(
      found->path, models::checkpoint_path_for_epoch(base, 10)));

  models::prune_checkpoints(base, 2);
  EXPECT_FALSE(
      std::filesystem::exists(models::checkpoint_path_for_epoch(base, 2)));
  EXPECT_TRUE(
      std::filesystem::exists(models::checkpoint_path_for_epoch(base, 4)));
  EXPECT_TRUE(
      std::filesystem::exists(models::checkpoint_path_for_epoch(base, 10)));

  for (int epoch : {4, 10})
    std::remove(models::checkpoint_path_for_epoch(base, epoch).c_str());
  std::remove((base + ".ep12.tmp.1234").c_str());
  EXPECT_FALSE(models::latest_checkpoint(base).has_value());
}

TEST(CheckpointRotation, AbortSiblingIsSkippedReportedAndNeverPruned) {
  // A strict-abort flush next to live rotations: never resumed from, never
  // counted against the retention budget, never deleted — but reported.
  const std::string base = temp_path("abortbase");
  auto model = small_model(7);
  for (int epoch : {2, 4})
    models::save_checkpoint(*model,
                            models::checkpoint_path_for_epoch(base, epoch));
  models::save_checkpoint(*model, base + ".abort");

  auto found = models::latest_checkpoint(base);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->epoch, 4);  // the abort flush is not a rotation

  // keep=1 must count only real rotations: ep2 goes, ep4 AND the abort
  // flush stay (the flush can be the only copy of an aborted run).
  models::prune_checkpoints(base, 1);
  EXPECT_FALSE(
      std::filesystem::exists(models::checkpoint_path_for_epoch(base, 2)));
  EXPECT_TRUE(
      std::filesystem::exists(models::checkpoint_path_for_epoch(base, 4)));
  EXPECT_TRUE(std::filesystem::exists(base + ".abort"));

  // The diagnostic names the flush; without one it stays silent.
  const std::string note = models::describe_abort_sibling(base);
  EXPECT_NE(note.find(base + ".abort"), std::string::npos) << note;
  EXPECT_EQ(models::describe_abort_sibling(base + "_other"), "");

  // Orphaned abort (rotations gone): still invisible to latest_checkpoint,
  // still loadable as a plain model checkpoint.
  std::remove(models::checkpoint_path_for_epoch(base, 4).c_str());
  EXPECT_FALSE(models::latest_checkpoint(base).has_value());
  EXPECT_NO_THROW(models::load_checkpoint(*model, base + ".abort"));
  std::remove((base + ".abort").c_str());
}

// ---- the atomic writer itself ----------------------------------------------

TEST(AtomicFile, InjectedWriteErrorIsTypedAndLeavesDestinationUntouched) {
  // A failed write(2) (here: the injected "file_write" site standing in for
  // a full disk) must latch, surface as Error{kIo} at commit, clean up the
  // temp file, and leave the previous complete destination byte-identical.
  auto model = small_model(7);
  const std::string path = temp_path("ckpt_efault.sptxc");
  models::save_checkpoint(*model, path);
  const std::string good = read_bytes(path);

  auto newer = small_model(99);
  fault::install("file_write:fail_once@1");
  try {
    models::save_checkpoint(*newer, path);
    fault::clear();
    FAIL() << "the injected write failure must surface";
  } catch (const Error& e) {
    fault::clear();
    EXPECT_EQ(e.code(), ErrorCode::kIo);
    EXPECT_NE(std::string(e.what()).find(std::strerror(EIO)),
              std::string::npos)
        << "commit error lost the latched errno: " << e.what();
  }

  EXPECT_EQ(read_bytes(path), good);  // destination untouched
  int leftovers = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(::testing::TempDir()))
    if (entry.path().filename().string().starts_with(
            "ckpt_efault.sptxc.tmp"))
      ++leftovers;
  EXPECT_EQ(leftovers, 0);  // failed write cleaned up its temp file
  std::remove(path.c_str());
}

volatile sig_atomic_t g_alarms_seen = 0;
void count_alarm(int) { g_alarms_seen = g_alarms_seen + 1; }

TEST(AtomicFile, SurvivesAnEintrSignalStorm) {
  // A non-SA_RESTART SIGALRM storm over a multi-megabyte write: every
  // interrupted open/write/fsync must be retried (StreamingTripletStore's
  // idiom) and the committed bytes must round-trip exactly. An ofstream
  // here would surface spurious failures.
  struct sigaction sa {};
  sa.sa_handler = count_alarm;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately NOT SA_RESTART
  struct sigaction old_sa {};
  ASSERT_EQ(::sigaction(SIGALRM, &sa, &old_sa), 0);
  itimerval storm{};
  storm.it_interval.tv_usec = 500;  // every 0.5 ms
  storm.it_value.tv_usec = 500;
  itimerval old_timer{};
  ASSERT_EQ(::setitimer(ITIMER_REAL, &storm, &old_timer), 0);

  const std::string path = temp_path("eintr_storm.bin");
  std::string chunk(64 * 1024, '\0');
  for (std::size_t i = 0; i < chunk.size(); ++i)
    chunk[i] = static_cast<char>(i * 131 + 7);
  {
    AtomicFileWriter writer(path);
    for (int i = 0; i < 64; ++i) writer.stream() << chunk;  // 4 MiB
    writer.commit();
  }

  ASSERT_EQ(::setitimer(ITIMER_REAL, &old_timer, nullptr), 0);
  ASSERT_EQ(::sigaction(SIGALRM, &old_sa, nullptr), 0);
  EXPECT_GT(static_cast<int>(g_alarms_seen), 0)
      << "the storm never fired — the test proved nothing";

  const std::string back = read_bytes(path);
  ASSERT_EQ(back.size(), chunk.size() * 64);
  for (int i = 0; i < 64; ++i)
    ASSERT_EQ(back.compare(chunk.size() * static_cast<std::size_t>(i),
                           chunk.size(), chunk),
              0)
        << "chunk " << i << " corrupted under the signal storm";
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sptx
